//! ED-LSTM baseline (Park et al. 2018): sequence-to-sequence LSTM
//! encoder-decoder per target vehicle. Like LSTM-MLP it models no vehicle
//! interactions and predicts one vehicle per forward pass; the decoder adds
//! an extra recurrent stage, reproducing the paper's observation that
//! sequential decoding costs accuracy (error accumulation) and time.

use crate::graph::{Prediction, StGraph, NUM_TARGETS};
use crate::models::{target_history, StatePredictor, TrainSample, TARGET_HISTORY_DIM};
use crate::normalize::Normalizer;
use nn::{Adam, Graph, Linear, LstmCell, Matrix, ParamStore, Var};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Hyper-parameters of [`EdLstm`].
#[derive(Clone, Copy, Debug)]
pub struct EdLstmConfig {
    /// Hidden width of the encoder and decoder LSTMs.
    pub d_hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for EdLstmConfig {
    fn default() -> Self {
        Self {
            d_hidden: 64,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// The encoder-decoder LSTM baseline predictor.
pub struct EdLstm {
    store: ParamStore,
    encoder: LstmCell,
    decoder: LstmCell,
    head: Linear,
    adam: Adam,
    norm: Normalizer,
    /// Persistent training tape; reset per target pass so steady-state
    /// batches recycle every buffer through the tape's arena.
    tape: Graph,
}

impl EdLstm {
    /// Builds a freshly initialised model.
    pub fn new(cfg: EdLstmConfig, norm: Normalizer) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let encoder = LstmCell::new(
            &mut store,
            "enc",
            TARGET_HISTORY_DIM,
            cfg.d_hidden,
            &mut rng,
        );
        let decoder = LstmCell::new(
            &mut store,
            "dec",
            TARGET_HISTORY_DIM,
            cfg.d_hidden,
            &mut rng,
        );
        let head = Linear::new(&mut store, "head", cfg.d_hidden, 3, &mut rng);
        Self {
            store,
            encoder,
            decoder,
            head,
            adam: Adam::new(cfg.lr),
            norm,
            tape: Graph::new(),
        }
    }

    fn forward_one(&self, g: &mut Graph, history: &Matrix) -> Var {
        let z = history.rows();
        let mut state = self.encoder.zero_state(g, 1);
        for tau in 0..z {
            let x = g.input(Matrix::from_vec(
                1,
                TARGET_HISTORY_DIM,
                history.row_slice(tau).to_vec(),
            ));
            state = self.encoder.step(g, &self.store, x, state);
        }
        // Decoder: seeded with the encoder state, consumes the last input
        // token and emits one decoded step (our task is one-step).
        let last = g.input(Matrix::from_vec(
            1,
            TARGET_HISTORY_DIM,
            history.row_slice(z - 1).to_vec(),
        ));
        let dec = self.decoder.step(g, &self.store, last, state);
        self.head.forward(g, &self.store, dec.h)
    }
}

impl StatePredictor for EdLstm {
    fn name(&self) -> &'static str {
        "ED-LSTM"
    }

    fn predict(&self, graph: &StGraph) -> Prediction {
        let mut pred = Prediction::default();
        for (i, p) in pred.iter_mut().enumerate() {
            let history = target_history(graph, i, &self.norm);
            // lint:allow(graph-churn) inference on `&self` (shared across evaluation workers); no tape to borrow
            let mut g = Graph::new();
            let out = self.forward_one(&mut g, &history);
            *p = self.norm.denorm_prediction(g.value(out).row_slice(0));
        }
        pred
    }

    fn train_batch(&mut self, samples: &[&TrainSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        self.store.zero_grad();
        let count: usize = samples
            .iter()
            .map(|s| {
                (0..NUM_TARGETS)
                    .filter(|&i| !s.graph.target_is_phantom(i))
                    .count()
            })
            .sum();
        let denom = count.max(1) as f32;
        let mut total = 0.0;
        let mut g = std::mem::take(&mut self.tape);
        for s in samples {
            for i in 0..NUM_TARGETS {
                if s.graph.target_is_phantom(i) {
                    continue;
                }
                let history = target_history(&s.graph, i, &self.norm);
                g.reset();
                let out = self.forward_one(&mut g, &history);
                let truth = g.input(Matrix::row(&self.norm.truth(&s.truth[i])));
                let d = g.sub(out, truth);
                let sq = g.mul_elem(d, d);
                let sum = g.sum_all(sq);
                let loss = g.scale(sum, 1.0 / (3.0 * denom));
                total += g.backward(loss, &mut self.store) as f64;
            }
        }
        self.tape = g;
        // Poisoned samples (NaN observations) must not destroy the weights:
        // non-finite losses or gradients skip the step.
        if nn::finite_guard(total as f32, &mut self.store, 5.0) {
            self.adam.step(&mut self.store);
        }
        total
    }

    fn param_count(&self) -> usize {
        self.store.scalar_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::synthetic_samples;

    #[test]
    fn learns_constant_velocity_pattern() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let samples = synthetic_samples(24, &mut rng);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let mut model = EdLstm::new(EdLstmConfig::default(), Normalizer::paper_default());
        let first = model.train_batch(&refs);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_batch(&refs);
        }
        assert!(
            last < first * 0.5,
            "ED-LSTM failed to learn: {first} -> {last}"
        );
    }

    #[test]
    fn has_more_parameters_than_single_lstm_baseline() {
        use crate::models::{LstmMlp, LstmMlpConfig};
        let ed = EdLstm::new(EdLstmConfig::default(), Normalizer::paper_default());
        let lm = LstmMlp::new(LstmMlpConfig::default(), Normalizer::paper_default());
        assert!(ed.param_count() > lm.param_count());
    }
}
