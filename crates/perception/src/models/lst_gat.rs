//! LST-GAT — Local Spatial-Temporal Graph ATtention network
//! (the paper's enhanced-perception model, §III-B, Fig. 5, Eqs. 10–14).
//!
//! Per time step, a shared graph-attention layer updates each target node
//! by attending over its 7-member neighbourhood (itself + 6 surrounding
//! vehicles); the updated target states are then fed through an LSTM over
//! the `z` history steps, and a linear head emits the one-step future state
//! of all six targets **in parallel** (a single forward pass).

use crate::graph::NUM_NODES;
use crate::graph::{
    member_indices, target_node, Prediction, StGraph, NUM_SURROUNDING, NUM_TARGETS,
};
use crate::models::{
    mask_matrix, node_matrix, node_matrix_stacked, real_output_count, to_prediction, truth_matrix,
    StatePredictor, TrainSample,
};
use crate::normalize::Normalizer;
use nn::{Adam, Graph, Linear, LstmCell, ParamId, ParamStore, Var};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

/// Hyper-parameters of [`LstGat`]. Defaults follow the paper (§V-A):
/// `D_φ1 = D_φ3 = D_l = 64`, Adam with learning rate 0.001.
#[derive(Clone, Copy, Debug)]
pub struct LstGatConfig {
    /// Attention embedding width `D_φ1`.
    pub d_phi1: usize,
    /// Value embedding width `D_φ3`.
    pub d_phi3: usize,
    /// LSTM hidden width `D_l`.
    pub d_lstm: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// LeakyReLU negative slope in the attention scores.
    pub leaky_slope: f32,
    /// Weight-init / shuffling seed.
    pub seed: u64,
}

impl Default for LstGatConfig {
    fn default() -> Self {
        Self {
            d_phi1: 64,
            d_phi3: 64,
            d_lstm: 64,
            lr: 1e-3,
            leaky_slope: 0.2,
            seed: 0,
        }
    }
}

/// The LST-GAT state-prediction model.
pub struct LstGat {
    store: ParamStore,
    w1: ParamId,
    a1: ParamId,
    a2: ParamId,
    w3: ParamId,
    lstm: LstmCell,
    head: Linear,
    adam: Adam,
    norm: Normalizer,
    /// Persistent training tape; reset per sample so steady-state batches
    /// recycle every buffer through the tape's arena.
    tape: Graph,
    target_flat: Arc<Vec<usize>>,
    member_flat: Arc<Vec<usize>>,
    leaky_slope: f32,
}

impl LstGat {
    /// Builds a freshly initialised model.
    pub fn new(cfg: LstGatConfig, norm: Normalizer) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let w1 = store.register_xavier("gat.phi1", 4, cfg.d_phi1, &mut rng);
        let a1 = store.register_xavier("gat.phi2_self", cfg.d_phi1, 1, &mut rng);
        let a2 = store.register_xavier("gat.phi2_neigh", cfg.d_phi1, 1, &mut rng);
        let w3 = store.register_xavier("gat.phi3", 4, cfg.d_phi3, &mut rng);
        let lstm = LstmCell::new(&mut store, "lstm", cfg.d_phi3, cfg.d_lstm, &mut rng);
        let head = Linear::new(&mut store, "head.phi4", cfg.d_lstm, 3, &mut rng);

        let members = member_indices();
        let mut target_flat = Vec::with_capacity(NUM_TARGETS * (NUM_SURROUNDING + 1));
        let mut member_flat = Vec::with_capacity(NUM_TARGETS * (NUM_SURROUNDING + 1));
        for (i, row) in members.iter().enumerate() {
            for &m in row {
                target_flat.push(target_node(i));
                member_flat.push(m);
            }
        }

        Self {
            store,
            w1,
            a1,
            a2,
            w3,
            lstm,
            head,
            adam: Adam::new(cfg.lr),
            norm,
            tape: Graph::new(),
            target_flat: Arc::new(target_flat),
            member_flat: Arc::new(member_flat),
            leaky_slope: cfg.leaky_slope,
        }
    }

    /// Shared forward pass: returns the normalised `6 x 3` output node.
    fn forward(&self, g: &mut Graph, graph: &StGraph) -> Var {
        let all: Vec<usize> = (0..NUM_TARGETS).collect();
        self.forward_targets(g, graph, &all)
    }

    /// Gather-index buffers restricted to `targets` (identity Arcs when
    /// the full set is requested, freshly built otherwise).
    fn flat_subset(&self, targets: &[usize]) -> (Arc<Vec<usize>>, Arc<Vec<usize>>) {
        if targets.len() == NUM_TARGETS && targets.iter().enumerate().all(|(i, &t)| i == t) {
            return (Arc::clone(&self.target_flat), Arc::clone(&self.member_flat));
        }
        let group = NUM_SURROUNDING + 1;
        let mut tf = Vec::with_capacity(targets.len() * group);
        let mut mf = Vec::with_capacity(targets.len() * group);
        for &t in targets {
            debug_assert!(t < NUM_TARGETS);
            let base = t * group;
            tf.extend_from_slice(&self.target_flat[base..base + group]);
            mf.extend_from_slice(&self.member_flat[base..base + group]);
        }
        (Arc::new(tf), Arc::new(mf))
    }

    /// Forward pass over a subset of targets: returns the normalised
    /// `targets.len() x 3` output node, row `r` belonging to
    /// `targets[r]`.
    ///
    /// Every op in the pass — matmul, gather, row-softmax, per-group sum,
    /// the batched LSTM step and the linear head — treats target rows
    /// independently, so row `r` here is **bit-identical** to row
    /// `targets[r]` of the full six-target pass. That is what lets
    /// [`LstGat::predict_par`] split the six heads across workers without
    /// perturbing a single output bit.
    fn forward_targets(&self, g: &mut Graph, graph: &StGraph, targets: &[usize]) -> Var {
        self.forward_stacked(g, &[graph], targets)
    }

    /// Gather-index buffers for `n_samples` stacked copies of the
    /// `targets` subset, sample `s` offset by `s * NUM_NODES` node rows.
    /// Built once per pass and Arc-shared by every history step.
    fn stacked_gathers(
        &self,
        n_samples: usize,
        targets: &[usize],
    ) -> (Arc<Vec<usize>>, Arc<Vec<usize>>) {
        let (tf1, mf1) = self.flat_subset(targets);
        if n_samples == 1 {
            return (tf1, mf1);
        }
        let mut tf = Vec::with_capacity(n_samples * tf1.len());
        let mut mf = Vec::with_capacity(n_samples * mf1.len());
        for s in 0..n_samples {
            let off = s * NUM_NODES;
            tf.extend(tf1.iter().map(|&i| i + off));
            mf.extend(mf1.iter().map(|&i| i + off));
        }
        (Arc::new(tf), Arc::new(mf))
    }

    /// Batch-major forward pass: `samples.len()` graphs stacked into one
    /// tape, returning a `(samples.len() * targets.len()) x 3` output node
    /// whose row `s * targets.len() + r` belongs to target `targets[r]` of
    /// sample `s`.
    ///
    /// Every op in the pass treats rows (or `group`-row blocks that never
    /// cross a sample boundary) independently, so each sample's row block
    /// is **bit-identical** to the single-sample pass — batching is purely
    /// a wall-clock optimisation, invisible in the output. One wide matmul
    /// per op replaces `samples.len()` skinny ones, which is where the
    /// batched speedup measured by `bench --bin perf`'s kernel section
    /// comes from.
    ///
    /// # Panics
    /// Panics if the stacked graphs disagree on history depth (a corpus
    /// bug — every builder in the workspace produces a fixed `z`).
    fn forward_stacked(&self, g: &mut Graph, samples: &[&StGraph], targets: &[usize]) -> Var {
        let group = NUM_SURROUNDING + 1;
        debug_assert!(!samples.is_empty());
        let depth = samples[0].depth();
        for s in samples {
            assert_eq!(s.depth(), depth, "stacked graphs must share history depth");
        }
        let rows = samples.len() * targets.len();
        let (target_flat, member_flat) = self.stacked_gathers(samples.len(), targets);
        let mut state = self.lstm.zero_state(g, rows);
        for tau in 0..depth {
            let h = g.input(node_matrix_stacked(samples, tau, &self.norm));
            let w1 = g.param(&self.store, self.w1);
            let u = g.matmul(h, w1);
            let a1 = g.param(&self.store, self.a1);
            let a2 = g.param(&self.store, self.a2);
            let s_self = g.matmul(u, a1);
            let s_neigh = g.matmul(u, a2);
            // Attention logits e_{i,x} = LeakyReLU(a1·U_i + a2·U_x) — the
            // standard GAT factorisation of φ2 [φ1 h_i || φ1 h_x].
            let e_self = g.gather_rows(s_self, Arc::clone(&target_flat));
            let e_neigh = g.gather_rows(s_neigh, Arc::clone(&member_flat));
            let e = g.add(e_self, e_neigh);
            let e = g.leaky_relu(e, self.leaky_slope);
            let e = g.reshape(e, rows, group);
            let alpha = g.softmax_rows(e);
            let alpha_flat = g.reshape(alpha, rows * group, 1);
            // Weighted aggregation of value embeddings (Eq. 11).
            let w3 = g.param(&self.store, self.w3);
            let v = g.matmul(h, w3);
            let v_gathered = g.gather_rows(v, Arc::clone(&member_flat));
            let weighted = g.mul_broadcast_col(v_gathered, alpha_flat);
            let updated = g.sum_groups(weighted, group);
            // Temporal aggregation (Eq. 12): all samples' requested
            // targets as one batch.
            state = self.lstm.step(g, &self.store, updated, state);
        }
        // Output head (Eq. 13) with a residual connection to the targets'
        // latest (normalised) states: the head predicts the one-step
        // *change*, which is far better conditioned than reproducing the
        // absolute state through the LSTM bottleneck. (Implementation
        // refinement; documented in DESIGN.md §6.)
        let delta = self.head.forward(g, &self.store, state.h);
        let mut current = nn::Matrix::zeros(rows, 3);
        for (s, graph) in samples.iter().enumerate() {
            let latest = node_matrix(graph, depth - 1, &self.norm);
            for (r, &t) in targets.iter().enumerate() {
                for c in 0..3 {
                    current.set(s * targets.len() + r, c, latest.get(target_node(t), c));
                }
            }
        }
        let current = g.input(current);
        g.add(delta, current)
    }

    /// Batched inference over several graphs on the persistent pooled
    /// tape: one wide forward pass, sliced back into per-graph
    /// predictions. Row-bit-identical to calling
    /// [`StatePredictor::predict`] once per graph (see
    /// [`LstGat::forward_stacked`]); taking `&mut self` hands the pass the
    /// training tape, so steady-state batches allocate nothing fresh.
    pub fn predict_batch(&mut self, graphs: &[&StGraph]) -> Vec<Prediction> {
        if graphs.is_empty() {
            return Vec::new();
        }
        telemetry::counter_add(
            telemetry::keys::NN_KERNEL_BATCHED_STATES,
            graphs.len() as u64,
        );
        let all: Vec<usize> = (0..NUM_TARGETS).collect();
        let mut g = std::mem::take(&mut self.tape);
        g.reset();
        let out = self.forward_stacked(&mut g, graphs, &all);
        let preds = {
            let value = g.value(out);
            (0..graphs.len())
                .map(|s| {
                    let mut block = nn::Matrix::zeros(NUM_TARGETS, 3);
                    for r in 0..NUM_TARGETS {
                        block
                            .row_slice_mut(r)
                            .copy_from_slice(value.row_slice(s * NUM_TARGETS + r));
                    }
                    to_prediction(&block, &self.norm)
                })
                .collect()
        };
        self.tape = g;
        preds
    }

    /// [`StatePredictor::predict`] with the six per-target heads spread
    /// across `pool`'s workers, one target per job, merged in target
    /// order. Bit-identical to the serial batched pass (see
    /// [`LstGat::forward_targets`]).
    ///
    /// Worth it only when a worker's share of the pass (a full node
    /// embedding plus a one-row head) beats thread-spawn overhead — the
    /// perf harness measures exactly that trade; the per-step env hot
    /// path keeps the serial batched pass.
    ///
    /// # Panics
    /// Panics if a worker panics (a model bug, not a caller error).
    pub fn predict_par(&self, graph: &StGraph, pool: &par::Pool) -> Prediction {
        let targets: Vec<usize> = (0..NUM_TARGETS).collect();
        let rows = match pool.try_map(targets, |_, t| {
            // lint:allow(graph-churn) worker-local graph: `&self` closure shared across threads cannot borrow the training tape
            let mut g = Graph::new();
            let out = self.forward_targets(&mut g, graph, &[t]);
            g.value(out).row_slice(0).to_vec()
        }) {
            Ok(rows) => rows,
            // lint:allow(panic) a worker panic here is a model bug; re-raise with context
            Err(e) => panic!("parallel LST-GAT inference failed: {e}"),
        };
        let mut data = Vec::with_capacity(NUM_TARGETS * 3);
        for row in rows {
            data.extend_from_slice(&row);
        }
        let merged = nn::Matrix::from_vec(NUM_TARGETS, 3, data);
        to_prediction(&merged, &self.norm)
    }

    /// Serialises the weights (checkpoint).
    pub fn weights_json(&self) -> String {
        self.store.to_json()
    }

    /// Restores weights from [`LstGat::weights_json`] output.
    pub fn load_weights_json(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let restored = ParamStore::from_json(json)?;
        self.store.copy_values_from(&restored);
        Ok(())
    }

    /// Attention weights of the latest frame for target `i` (diagnostics;
    /// each row sums to 1).
    pub fn attention_of(&self, graph: &StGraph, i: usize) -> Vec<f32> {
        let group = NUM_SURROUNDING + 1;
        // lint:allow(graph-churn) cold diagnostics path on `&self`; no tape to borrow
        let mut g = Graph::new();
        let tau = graph.depth() - 1;
        let h = g.input(node_matrix(graph, tau, &self.norm));
        let w1 = g.param(&self.store, self.w1);
        let u = g.matmul(h, w1);
        let a1 = g.param(&self.store, self.a1);
        let a2 = g.param(&self.store, self.a2);
        let s_self = g.matmul(u, a1);
        let s_neigh = g.matmul(u, a2);
        let e_self = g.gather_rows(s_self, Arc::clone(&self.target_flat));
        let e_neigh = g.gather_rows(s_neigh, Arc::clone(&self.member_flat));
        let e = g.add(e_self, e_neigh);
        let e = g.leaky_relu(e, self.leaky_slope);
        let e = g.reshape(e, NUM_TARGETS, group);
        let alpha = g.softmax_rows(e);
        g.value(alpha).row_slice(i).to_vec()
    }
}

impl StatePredictor for LstGat {
    fn name(&self) -> &'static str {
        "LST-GAT"
    }

    fn predict(&self, graph: &StGraph) -> Prediction {
        // lint:allow(graph-churn) inference on `&self` (shared across evaluation workers); no tape to borrow
        let mut g = Graph::new();
        let out = self.forward(&mut g, graph);
        to_prediction(g.value(out), &self.norm)
    }

    fn train_batch(&mut self, samples: &[&TrainSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        self.store.zero_grad();
        let n = samples.len() as f32;
        let all: Vec<usize> = (0..NUM_TARGETS).collect();
        let graphs: Vec<&StGraph> = samples.iter().map(|s| &s.graph).collect();
        let mut g = std::mem::take(&mut self.tape);
        g.reset();
        // One wide forward and ONE backward per minibatch: every sample
        // used to pay a full tape build and reverse walk of its own; now
        // all of them share each op's dispatch and the wide matmuls.
        let pred = self.forward_stacked(&mut g, &graphs, &all);
        // Stacked truth/mask. Each sample's `1 / (real_output_count * n)`
        // loss normaliser is folded into its mask rows, so a single
        // `masked_sse` over the stack computes the same sum of per-sample
        // masked losses — and because `mask * inv` multiplies in the same
        // order the old per-sample `scale` backward did, every element's
        // prediction gradient keeps the exact bits of the per-sample path.
        let mut truth = nn::Matrix::zeros(samples.len() * NUM_TARGETS, 3);
        let mut mask = nn::Matrix::zeros(samples.len() * NUM_TARGETS, 3);
        for (s, sample) in samples.iter().enumerate() {
            let t = truth_matrix(&sample.truth, &self.norm);
            let m = mask_matrix(&sample.graph);
            let inv = 1.0 / (real_output_count(&sample.graph) * n);
            let base = s * NUM_TARGETS;
            for r in 0..NUM_TARGETS {
                truth
                    .row_slice_mut(base + r)
                    .copy_from_slice(t.row_slice(r));
                for (o, &mv) in mask.row_slice_mut(base + r).iter_mut().zip(m.row_slice(r)) {
                    *o = mv * inv;
                }
            }
        }
        let truth = g.input(truth);
        let mask = g.input(mask);
        let loss = g.masked_sse(pred, truth, mask, 1.0);
        let total = g.backward(loss, &mut self.store) as f64;
        self.tape = g;
        // Poisoned samples (NaN observations) must not destroy the weights:
        // non-finite losses or gradients skip the step.
        if nn::finite_guard(total as f32, &mut self.store, 5.0) {
            self.adam.step(&mut self.store);
        }
        total
    }

    fn param_count(&self) -> usize {
        self.store.scalar_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::synthetic_samples;
    use rand::SeedableRng;

    #[test]
    fn output_shape_and_attention_normalisation() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let samples = synthetic_samples(1, &mut rng);
        let model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
        let pred = model.predict(&samples[0].graph);
        assert_eq!(pred.len(), NUM_TARGETS);
        for i in 0..NUM_TARGETS {
            let alpha = model.attention_of(&samples[0].graph, i);
            assert_eq!(alpha.len(), NUM_SURROUNDING + 1);
            let sum: f32 = alpha.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-5,
                "attention row must sum to 1, got {sum}"
            );
            assert!(alpha.iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn loss_decreases_on_synthetic_corpus() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let samples = synthetic_samples(32, &mut rng);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let mut model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
        let first = model.train_batch(&refs);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_batch(&refs);
        }
        assert!(
            last < first * 0.5,
            "LST-GAT failed to learn: first {first}, last {last}"
        );
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let samples = synthetic_samples(4, &mut rng);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let mut model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
        for _ in 0..5 {
            model.train_batch(&refs);
        }
        let json = model.weights_json();
        let before = model.predict(&samples[0].graph);
        let mut fresh = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
        fresh.load_weights_json(&json).unwrap();
        let after = fresh.predict(&samples[0].graph);
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b.d_lon - a.d_lon).abs() < 1e-6);
            assert!((b.d_lat - a.d_lat).abs() < 1e-6);
            assert!((b.v_rel - a.v_rel).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_heads_are_bit_identical_to_the_batched_pass() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let samples = synthetic_samples(3, &mut rng);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let mut model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
        for _ in 0..3 {
            model.train_batch(&refs);
        }
        let pool = par::Pool::new(3);
        for s in &samples {
            let serial = model.predict(&s.graph);
            let parallel = model.predict_par(&s.graph, &pool);
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.d_lat.to_bits(), b.d_lat.to_bits());
                assert_eq!(a.d_lon.to_bits(), b.d_lon.to_bits());
                assert_eq!(a.v_rel.to_bits(), b.v_rel.to_bits());
            }
        }
    }

    #[test]
    fn batched_predict_rows_are_bit_identical_to_per_sample() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let samples = synthetic_samples(5, &mut rng);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let mut model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
        for _ in 0..3 {
            model.train_batch(&refs);
        }
        let graphs: Vec<&StGraph> = samples.iter().map(|s| &s.graph).collect();
        let batched = model.predict_batch(&graphs);
        assert_eq!(batched.len(), samples.len());
        for (s, sample) in samples.iter().enumerate() {
            let single = model.predict(&sample.graph);
            for (a, b) in single.iter().zip(batched[s].iter()) {
                assert_eq!(a.d_lat.to_bits(), b.d_lat.to_bits());
                assert_eq!(a.d_lon.to_bits(), b.d_lon.to_bits());
                assert_eq!(a.v_rel.to_bits(), b.v_rel.to_bits());
            }
        }
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
        let expected = 4 * 64 + 64 + 64 + 4 * 64 // GAT
            + 4 * (64 * 64 + 64 * 64 + 64) // LSTM gates
            + 64 * 3 + 3; // head
        assert_eq!(model.param_count(), expected);
    }
}
