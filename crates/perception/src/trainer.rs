//! Training and evaluation harness for state predictors — produces the
//! numbers reported in the paper's Tables III (MAE/MSE/RMSE) and IV
//! (training convergence time, average inference time).

use crate::graph::NUM_TARGETS;
use crate::models::{StatePredictor, TrainSample};
use nn::narrow;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use telemetry::{keys, Stopwatch};

/// Training options.
#[derive(Clone, Copy, Debug)]
pub struct TrainOptions {
    /// Number of passes over the training set (paper: 15).
    pub epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Relative epoch-loss improvement below which training counts as
    /// converged (for the TCT metric).
    pub convergence_tol: f64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 15,
            batch_size: 64,
            seed: 0,
            convergence_tol: 0.01,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds until the convergence criterion fired (or until
    /// the last epoch if it never did).
    pub convergence_secs: f64,
    /// Total wall-clock seconds.
    pub total_secs: f64,
}

/// Trains `model` on `samples` and reports per-epoch losses and timing.
pub fn train(
    model: &mut dyn StatePredictor,
    samples: &[TrainSample],
    opts: &TrainOptions,
) -> TrainReport {
    let _train_span = telemetry::span!(keys::SPAN_PERCEPTION_TRAIN);
    let mut rng = ChaCha12Rng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let started = Stopwatch::start();
    let mut epoch_losses = Vec::with_capacity(opts.epochs);
    let mut convergence_secs = None;
    for epoch in 0..opts.epochs {
        let _epoch_span = telemetry::span!(keys::SPAN_EPOCH);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(opts.batch_size) {
            let _batch_span = telemetry::span!(keys::SPAN_TRAIN_BATCH);
            // Borrow the shuffled batch — an `StGraph` is several KiB, so
            // cloning one per sample per batch would dwarf the training work.
            let batch: Vec<&TrainSample> = chunk.iter().map(|&i| &samples[i]).collect();
            let batch_loss = model.train_batch(&batch);
            telemetry::histogram_record(keys::PERCEPTION_BATCH_LOSS, batch_loss);
            epoch_loss += batch_loss;
            batches += 1;
        }
        let mean = epoch_loss / batches.max(1) as f64;
        if convergence_secs.is_none() {
            if let Some(&prev) = epoch_losses.last() {
                if prev > 0.0 && (prev - mean) / prev < opts.convergence_tol {
                    convergence_secs = Some(started.elapsed().as_secs_f64());
                }
            }
        }
        telemetry::gauge_set(keys::PERCEPTION_EPOCH_LOSS, mean);
        telemetry::emit_event(
            keys::EVENT_PERCEPTION_EPOCH,
            vec![
                ("epoch", telemetry::Json::from(epoch)),
                ("mean_loss", telemetry::Json::from(mean)),
            ],
        );
        epoch_losses.push(mean);
    }
    let total_secs = started.elapsed().as_secs_f64();
    TrainReport {
        epoch_losses,
        convergence_secs: convergence_secs.unwrap_or(total_secs),
        total_secs,
    }
}

/// Accuracy metrics over real (non-phantom) targets, in normalised units so
/// lateral, longitudinal and velocity errors are commensurable — the
/// convention behind the paper's Table III magnitudes.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Mean absolute error.
    pub mae: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Number of scalar errors aggregated.
    pub count: usize,
}

/// One sample's error contribution: `(abs_sum, sq_sum, count)` over its
/// real (non-phantom) targets.
///
/// Both [`evaluate`] and [`evaluate_par`] fold these per-sample partials
/// **in sample order**, so the two entry points produce bit-identical
/// metrics: parallelism decides who computes a partial, never the
/// floating-point fold order.
fn sample_partials<M: StatePredictor + ?Sized>(
    model: &M,
    s: &TrainSample,
    norm: &crate::normalize::Normalizer,
) -> (f64, f64, usize) {
    let pred = model.predict(&s.graph);
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut count = 0usize;
    for (i, pred_i) in pred.iter().enumerate().take(NUM_TARGETS) {
        if s.graph.target_is_phantom(i) {
            continue;
        }
        let t = norm.truth(&s.truth[i]);
        let p = [
            narrow(pred_i.d_lat / norm.d_lat),
            narrow(pred_i.d_lon / norm.d_lon),
            narrow(pred_i.v_rel / norm.vel),
        ];
        for (a, b) in p.iter().zip(t.iter()) {
            let e = (a - b) as f64;
            abs_sum += e.abs();
            sq_sum += e * e;
            count += 1;
        }
    }
    (abs_sum, sq_sum, count)
}

/// Ordered fold of per-sample partials into the final metrics — the one
/// accumulation both evaluation paths share.
fn fold_partials(partials: impl IntoIterator<Item = (f64, f64, usize)>) -> EvalMetrics {
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut count = 0usize;
    for (pa, pq, pc) in partials {
        abs_sum += pa;
        sq_sum += pq;
        count += pc;
    }
    let n = count.max(1) as f64;
    let mse = sq_sum / n;
    EvalMetrics {
        mae: abs_sum / n,
        mse,
        rmse: mse.sqrt(),
        count,
    }
}

/// Evaluates a predictor on a held-out set.
pub fn evaluate(
    model: &dyn StatePredictor,
    samples: &[TrainSample],
    norm: &crate::normalize::Normalizer,
) -> EvalMetrics {
    let _eval_span = telemetry::span!(keys::SPAN_PERCEPTION_EVALUATE);
    fold_partials(samples.iter().map(|s| sample_partials(model, s, norm)))
}

/// [`evaluate`] with samples fanned across `pool`'s workers.
///
/// Bit-identical to the serial path: each worker computes whole-sample
/// partials with the serial per-sample code, and the pool returns them in
/// submission order for the same fold. On a pool of one thread this *is*
/// the serial path.
///
/// # Panics
/// Panics if a worker panics (a predictor bug, not a caller error).
pub fn evaluate_par<M: StatePredictor + Sync>(
    model: &M,
    samples: &[TrainSample],
    norm: &crate::normalize::Normalizer,
    pool: &par::Pool,
) -> EvalMetrics {
    let _eval_span = telemetry::span!(keys::SPAN_PERCEPTION_EVALUATE);
    let items: Vec<&TrainSample> = samples.iter().collect();
    match pool.try_map(items, |_, s| sample_partials(model, s, norm)) {
        Ok(partials) => fold_partials(partials),
        // lint:allow(panic) a worker panic here is a predictor bug; re-raise with context
        Err(e) => panic!("parallel perception evaluation failed: {e}"),
    }
}

/// Measures average per-call inference latency in milliseconds.
pub fn mean_inference_ms(model: &dyn StatePredictor, samples: &[TrainSample], reps: usize) -> f64 {
    let started = Stopwatch::start();
    let mut calls = 0usize;
    for _ in 0..reps.max(1) {
        for s in samples {
            let p = model.predict(&s.graph);
            std::hint::black_box(p);
            calls += 1;
        }
    }
    started.elapsed().as_secs_f64() * 1e3 / calls.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::synthetic_samples;
    use crate::models::{LstGat, LstGatConfig};
    use crate::normalize::Normalizer;

    #[test]
    fn train_reduces_loss_and_eval_improves() {
        let mut rng = ChaCha12Rng::seed_from_u64(21);
        let samples = synthetic_samples(48, &mut rng);
        let (train_set, test_set) = samples.split_at(40);
        let norm = Normalizer::paper_default();
        let mut model = LstGat::new(LstGatConfig::default(), norm);
        let before = evaluate(&model, test_set, &norm);
        let report = train(
            &mut model,
            train_set,
            &TrainOptions {
                epochs: 8,
                batch_size: 16,
                ..Default::default()
            },
        );
        let after = evaluate(&model, test_set, &norm);
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
        assert!(
            after.mae < before.mae,
            "MAE {} -> {}",
            before.mae,
            after.mae
        );
        assert!(after.rmse <= after.mae * 10.0);
        assert!(report.convergence_secs <= report.total_secs);
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let mut rng = ChaCha12Rng::seed_from_u64(22);
        let samples = synthetic_samples(6, &mut rng);
        let norm = Normalizer::paper_default();
        let model = LstGat::new(LstGatConfig::default(), norm);
        let m = evaluate(&model, &samples, &norm);
        assert!(m.count > 0);
        assert!((m.rmse * m.rmse - m.mse).abs() < 1e-9);
        assert!(m.mae >= 0.0 && m.mse >= 0.0);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        let mut rng = ChaCha12Rng::seed_from_u64(24);
        let samples = synthetic_samples(12, &mut rng);
        let norm = Normalizer::paper_default();
        let model = LstGat::new(LstGatConfig::default(), norm);
        let serial = evaluate(&model, &samples, &norm);
        for threads in [1, 2, 4] {
            let parallel = evaluate_par(&model, &samples, &norm, &par::Pool::new(threads));
            assert_eq!(
                serial.mae.to_bits(),
                parallel.mae.to_bits(),
                "{threads} threads"
            );
            assert_eq!(serial.mse.to_bits(), parallel.mse.to_bits());
            assert_eq!(serial.rmse.to_bits(), parallel.rmse.to_bits());
            assert_eq!(serial.count, parallel.count);
        }
    }

    #[test]
    fn inference_timer_returns_positive() {
        let mut rng = ChaCha12Rng::seed_from_u64(23);
        let samples = synthetic_samples(2, &mut rng);
        let norm = Normalizer::paper_default();
        let model = LstGat::new(LstGatConfig::default(), norm);
        let ms = mean_inference_ms(&model, &samples, 2);
        assert!(ms > 0.0);
    }
}
