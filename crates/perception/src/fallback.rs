//! Graceful degradation for the perception stack.
//!
//! When a sensor sweep is blacked out or the predictor emits non-finite
//! state, the decision layer still needs *some* percepts every step. The
//! [`FallbackGuard`] keeps the last known-good spatial-temporal graph and
//! prediction and degrades tier by tier instead of panicking:
//!
//! 1. [`FallbackTier::LastPrediction`] — reuse the previous model output
//!    verbatim (one stale step is within the model's own error band).
//! 2. [`FallbackTier::LastObservation`] — fall back to a persistence
//!    prediction over the last good observation.
//! 3. [`FallbackTier::Extrapolation`] — constant-velocity extrapolate the
//!    last good graph forward and predict by persistence over it.
//!
//! Every degraded step bumps a `perception.fallback.*` telemetry counter so
//! robustness runs can report how often each tier was exercised.

use crate::graph::{target_node, Prediction, StGraph};
use telemetry::keys;

/// Which rung of the degradation ladder produced the current percepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackTier {
    /// Fresh, finite model output — no degradation.
    Model,
    /// Previous model output reused verbatim (one stale step).
    LastPrediction,
    /// Persistence prediction over the last good observation.
    LastObservation,
    /// Constant-velocity extrapolation of the last good graph.
    Extrapolation,
}

impl FallbackTier {
    /// Telemetry counter bumped when this tier serves a step (`None` for
    /// the healthy path).
    pub fn counter(self) -> Option<&'static str> {
        match self {
            FallbackTier::Model => None,
            FallbackTier::LastPrediction => Some(keys::PERCEPTION_FALLBACK_LAST_PREDICTION),
            FallbackTier::LastObservation => Some(keys::PERCEPTION_FALLBACK_LAST_OBSERVATION),
            FallbackTier::Extrapolation => Some(keys::PERCEPTION_FALLBACK_EXTRAPOLATION),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FallbackTier::Model => "model",
            FallbackTier::LastPrediction => "last_prediction",
            FallbackTier::LastObservation => "last_observation",
            FallbackTier::Extrapolation => "extrapolation",
        }
    }
}

/// True when every predicted component is finite.
pub fn prediction_is_finite(pred: &Prediction) -> bool {
    pred.iter()
        .all(|p| p.d_lat.is_finite() && p.d_lon.is_finite() && p.v_rel.is_finite())
}

/// True when every node feature (and the ego anchor state) is finite.
pub fn graph_is_finite(graph: &StGraph) -> bool {
    let ego = &graph.ego_latest;
    ego.lat.is_finite()
        && ego.lon.is_finite()
        && ego.vel.is_finite()
        && graph
            .frames
            .iter()
            .all(|frame| frame.iter().all(|node| node.iter().all(|v| v.is_finite())))
}

/// Persistence prediction: each target is assumed to hold its latest
/// relative state for one more step (mirrors `PerceptionMode::Persistence`).
fn persistence(graph: &StGraph) -> Prediction {
    let latest = &graph.frames[graph.depth() - 1];
    let mut pred = Prediction::default();
    for (i, p) in pred.iter_mut().enumerate() {
        let h = latest[target_node(i)];
        p.d_lat = h[0];
        p.d_lon = h[1];
        p.v_rel = h[2];
    }
    pred
}

/// Keeps the last known-good percepts and serves degraded substitutes while
/// fresh perception is unavailable or non-finite.
#[derive(Clone, Debug)]
pub struct FallbackGuard {
    dt: f64,
    last_good: Option<(StGraph, Prediction)>,
    staleness: u64,
}

impl FallbackGuard {
    /// `dt` is the simulation step length used for extrapolation, s.
    pub fn new(dt: f64) -> Self {
        Self {
            dt,
            last_good: None,
            staleness: 0,
        }
    }

    /// Consecutive steps served from fallback (0 on the healthy path).
    pub fn staleness(&self) -> u64 {
        self.staleness
    }

    /// Resolves one step of percepts. `fresh` is the new graph/prediction
    /// pair when the pipeline produced one (possibly non-finite), or `None`
    /// on a sensor blackout. Returns `None` only before the first good
    /// frame ever seen (cold start).
    pub fn resolve(
        &mut self,
        fresh: Option<(StGraph, Prediction)>,
    ) -> Option<(StGraph, Prediction, FallbackTier)> {
        if let Some((graph, pred)) = fresh {
            if graph_is_finite(&graph) && prediction_is_finite(&pred) {
                self.last_good = Some((graph.clone(), pred));
                self.staleness = 0;
                return Some((graph, pred, FallbackTier::Model));
            }
        }

        self.staleness += 1;
        let (good_graph, good_pred) = self.last_good.as_ref()?;
        let tier = match self.staleness {
            1 => FallbackTier::LastPrediction,
            2 => FallbackTier::LastObservation,
            _ => FallbackTier::Extrapolation,
        };
        if let Some(counter) = tier.counter() {
            telemetry::counter_add(counter, 1);
            // The staleness value makes a later fault dump show how deep
            // into the degradation ladder the run was.
            telemetry::flight_record(counter, self.staleness as f64);
        }

        let out = match tier {
            // lint:allow(panic, serve-reachability) the healthy tier returned earlier in this function
            FallbackTier::Model => unreachable!("healthy path returns above"),
            FallbackTier::LastPrediction => (good_graph.clone(), *good_pred),
            FallbackTier::LastObservation => (good_graph.clone(), persistence(good_graph)),
            FallbackTier::Extrapolation => {
                let graph = extrapolate(good_graph, self.dt * (self.staleness - 1) as f64);
                let pred = persistence(&graph);
                (graph, pred)
            }
        };
        Some((out.0, out.1, tier))
    }
}

/// Constant-velocity extrapolation of the latest frame by `horizon`
/// seconds. Relative nodes advance `d_lon` by `v_rel`, ego slots advance
/// raw `lon` by `v`; lateral state and velocities are held.
fn extrapolate(graph: &StGraph, horizon: f64) -> StGraph {
    let mut out = graph.clone();
    let last = out.depth() - 1;
    // Both encodings put longitudinal position in slot 1 and its rate in
    // slot 2 ([_, d_lon, v_rel, _] relative rows, [_, lon, v, _] ego rows),
    // so one update covers every node.
    for node in out.frames[last].iter_mut() {
        node[1] += node[2] * horizon;
    }
    out.ego_latest.lon += out.ego_latest.vel * horizon;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{MissingKind, NodeSource, PredictedState, RawState, NUM_NODES};
    use traffic_sim::VehicleId;

    fn mk_graph(d_lon: f64) -> StGraph {
        let mut frame = [[0.0; 4]; NUM_NODES];
        frame[target_node(0)] = [1.0, d_lon, 2.0, 0.0];
        let mut sources = [NodeSource::Phantom(MissingKind::ZeroPadded); NUM_NODES];
        sources[target_node(0)] = NodeSource::Observed(VehicleId(1));
        StGraph {
            frames: vec![frame, frame],
            sources,
            ego_latest: RawState {
                lat: 2.0,
                lon: 300.0,
                vel: 20.0,
            },
        }
    }

    fn mk_pred(d_lon: f64) -> Prediction {
        let mut p = Prediction::default();
        p[0] = PredictedState {
            d_lat: 1.0,
            d_lon,
            v_rel: 2.0,
        };
        p
    }

    #[test]
    fn healthy_path_is_tier_model() {
        let mut guard = FallbackGuard::new(0.1);
        let (_, pred, tier) = guard
            .resolve(Some((mk_graph(50.0), mk_pred(50.2))))
            .expect("good frame");
        assert_eq!(tier, FallbackTier::Model);
        assert_eq!(pred, mk_pred(50.2));
        assert_eq!(guard.staleness(), 0);
    }

    #[test]
    fn cold_start_without_history_yields_none() {
        let mut guard = FallbackGuard::new(0.1);
        assert!(guard.resolve(None).is_none());
    }

    #[test]
    fn ladder_descends_by_staleness() {
        let mut guard = FallbackGuard::new(0.1);
        let _ = guard.resolve(Some((mk_graph(50.0), mk_pred(50.2))));

        let (_, pred, tier) = guard.resolve(None).expect("tier 1");
        assert_eq!(tier, FallbackTier::LastPrediction);
        assert_eq!(
            pred,
            mk_pred(50.2),
            "tier 1 reuses the model output verbatim"
        );

        let (_, pred, tier) = guard.resolve(None).expect("tier 2");
        assert_eq!(tier, FallbackTier::LastObservation);
        assert!(
            (pred[0].d_lon - 50.0).abs() < 1e-12,
            "tier 2 is persistence over the graph"
        );

        let (graph, pred, tier) = guard.resolve(None).expect("tier 3");
        assert_eq!(tier, FallbackTier::Extrapolation);
        // staleness 3 → horizon 2·dt; d_lon advances by v_rel · horizon.
        assert!((pred[0].d_lon - (50.0 + 2.0 * 0.2)).abs() < 1e-12);
        assert!((graph.ego_latest.lon - (300.0 + 20.0 * 0.2)).abs() < 1e-12);
        assert_eq!(guard.staleness(), 3);
    }

    #[test]
    fn non_finite_fresh_counts_as_outage() {
        let mut guard = FallbackGuard::new(0.1);
        let _ = guard.resolve(Some((mk_graph(50.0), mk_pred(50.2))));
        let mut bad = mk_pred(f64::NAN);
        bad[0].d_lon = f64::NAN;
        let (_, pred, tier) = guard
            .resolve(Some((mk_graph(51.0), bad)))
            .expect("fallback");
        assert_eq!(tier, FallbackTier::LastPrediction);
        assert!(prediction_is_finite(&pred));
    }

    #[test]
    fn good_frame_resets_the_ladder() {
        let mut guard = FallbackGuard::new(0.1);
        let _ = guard.resolve(Some((mk_graph(50.0), mk_pred(50.2))));
        let _ = guard.resolve(None);
        let _ = guard.resolve(None);
        let (_, _, tier) = guard
            .resolve(Some((mk_graph(52.0), mk_pred(52.2))))
            .expect("recovered");
        assert_eq!(tier, FallbackTier::Model);
        assert_eq!(guard.staleness(), 0);
        let (_, pred, tier) = guard.resolve(None).expect("tier 1 again");
        assert_eq!(tier, FallbackTier::LastPrediction);
        assert_eq!(
            pred,
            mk_pred(52.2),
            "ladder restarts from the newest good output"
        );
    }

    #[test]
    fn fallback_counters_are_recorded() {
        let was = telemetry::set_enabled(true);
        let before = telemetry::counter_value("perception.fallback.last_prediction");
        let mut guard = FallbackGuard::new(0.1);
        let _ = guard.resolve(Some((mk_graph(50.0), mk_pred(50.2))));
        let _ = guard.resolve(None);
        assert!(telemetry::counter_value("perception.fallback.last_prediction") > before);
        telemetry::set_enabled(was);
    }

    #[test]
    fn graph_finiteness_detects_nan_nodes() {
        let good = mk_graph(50.0);
        assert!(graph_is_finite(&good));
        let mut bad = mk_graph(50.0);
        bad.frames[1][3][2] = f64::INFINITY;
        assert!(!graph_is_finite(&bad));
        let mut bad_ego = mk_graph(50.0);
        bad_ego.ego_latest.vel = f64::NAN;
        assert!(!graph_is_finite(&bad_ego));
    }
}
