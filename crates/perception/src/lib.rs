//! # perception — the HEAD enhanced perception module
//!
//! Reproduces §III of *"Impact-aware Maneuver Decision with Enhanced
//! Perception for Autonomous Vehicle"* (ICDE 2023):
//!
//! * **Phantom vehicle construction** ([`GraphBuilder`]) — fills vehicles
//!   missing from the sensor view according to their missing kind (range /
//!   occlusion / inherent, Eqs. 4–6) so the downstream predictor always
//!   sees a complete 42-node neighbourhood.
//! * **Spatial-temporal graph** ([`StGraph`]) — 6 targets + 36 surrounding
//!   nodes over `z` history steps with relative-state encoding (Eqs. 7–9).
//! * **LST-GAT** ([`LstGat`]) — graph attention + LSTM one-step state
//!   predictor operating on all targets in parallel (Eqs. 10–14).
//! * **Baselines** — [`LstmMlp`], [`EdLstm`], [`GasLed`], the comparison
//!   models of Tables III–IV.
//! * **Harness** — [`train`], [`evaluate`], [`mean_inference_ms`] produce
//!   the accuracy and efficiency numbers those tables report.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod fallback;
mod graph;
mod models;
mod normalize;
mod phantom;
mod trainer;

pub use fallback::{graph_is_finite, prediction_is_finite, FallbackGuard, FallbackTier};
pub use graph::{
    member_indices, surrounding_node, target_node, Area, MissingKind, NodeSource, PredictedState,
    Prediction, RawState, StGraph, AREAS, NODE_DIM, NUM_NODES, NUM_SURROUNDING, NUM_TARGETS,
};
pub use models::{
    EdLstm, EdLstmConfig, GasLed, GasLedConfig, LstGat, LstGatConfig, LstmMlp, LstmMlpConfig,
    StatePredictor, TrainSample,
};
pub use normalize::{relative_truth, Normalizer};
pub use phantom::{de_relativise, BuilderConfig, GraphBuilder};
pub use trainer::{
    evaluate, evaluate_par, mean_inference_ms, train, EvalMetrics, TrainOptions, TrainReport,
};
