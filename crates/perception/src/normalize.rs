//! Input/output normalisation for the state-prediction networks.
//!
//! The paper's state vectors mix metres (|d_lon| up to R = 100), lane
//! widths (|d_lat| ≤ ~20) and m/s (|v_rel| ≤ 25), plus the ego's raw
//! longitudinal position which grows to the road length. Feeding those raw
//! scales into small dense networks stalls training, so every model in this
//! crate normalises node features with the fixed constants below and
//! denormalises its outputs. (The paper does not describe its scaling; this
//! is the standard practice its PyTorch implementation would rely on.)

use crate::graph::{PredictedState, RawState};
use nn::narrow;
use serde::{Deserialize, Serialize};

/// Fixed normalisation constants.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Normalizer {
    /// Scale for relative lateral offsets, m.
    pub d_lat: f64,
    /// Scale for relative longitudinal offsets, m (the sensor radius).
    pub d_lon: f64,
    /// Scale for velocities, m/s (the speed limit).
    pub vel: f64,
    /// Scale for raw lane numbers (κ + 1).
    pub lat: f64,
    /// Scale for raw longitudinal positions, m (the road length).
    pub lon: f64,
}

impl Normalizer {
    /// Builds the normaliser from environment constants.
    pub fn new(lanes: usize, lane_width: f64, range: f64, v_max: f64, road_len: f64) -> Self {
        Self {
            d_lat: (lanes as f64 + 1.0) * lane_width,
            d_lon: range,
            vel: v_max,
            lat: lanes as f64 + 1.0,
            lon: road_len,
        }
    }

    /// Normalises one *relative* node feature vector `[d_lat, d_lon, v_rel, IF]`.
    pub fn relative(&self, h: &[f64; 4]) -> [f32; 4] {
        [
            narrow(h[0] / self.d_lat),
            narrow(h[1] / self.d_lon),
            narrow(h[2] / self.vel),
            h[3] as f32,
        ]
    }

    /// Normalises one *raw ego* node feature vector `[lat, lon, v, 0]`.
    pub fn raw(&self, h: &[f64; 4]) -> [f32; 4] {
        [
            narrow(h[0] / self.lat),
            narrow(h[1] / self.lon),
            narrow(h[2] / self.vel),
            h[3] as f32,
        ]
    }

    /// Normalises a ground-truth target `[d_lat, d_lon, v_rel]`.
    pub fn truth(&self, t: &[f64; 3]) -> [f32; 3] {
        [
            narrow(t[0] / self.d_lat),
            narrow(t[1] / self.d_lon),
            narrow(t[2] / self.vel),
        ]
    }

    /// Denormalises a network output row back into a [`PredictedState`].
    pub fn denorm_prediction(&self, row: &[f32]) -> PredictedState {
        PredictedState {
            d_lat: row[0] as f64 * self.d_lat,
            d_lon: row[1] as f64 * self.d_lon,
            v_rel: row[2] as f64 * self.vel,
        }
    }

    /// Default normaliser for the paper's environment (6 lanes × 3.2 m,
    /// R = 100 m, v_max = 25 m/s, 3 km road).
    pub fn paper_default() -> Self {
        Self::new(6, 3.2, 100.0, 25.0, 3000.0)
    }
}

/// Ground truth of one target relative to the ego at the *current* step:
/// `[d_lat(C^{t+1}, A^t), d_lon(C^{t+1}, A^t), v(C^{t+1}, A^t)]`.
pub fn relative_truth(next: &RawState, ego_now: &RawState, lane_width: f64) -> [f64; 3] {
    [
        (next.lat - ego_now.lat) * lane_width,
        next.lon - ego_now.lon,
        next.vel - ego_now.vel,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_roundtrip() {
        let n = Normalizer::paper_default();
        let h = [6.4, -50.0, 12.5, 1.0];
        let v = n.relative(&h);
        assert!((v[0] as f64 * n.d_lat - 6.4).abs() < 1e-5);
        assert!((v[1] as f64 * n.d_lon + 50.0).abs() < 1e-5);
        assert!((v[2] as f64 * n.vel - 12.5).abs() < 1e-5);
        assert_eq!(v[3], 1.0);
    }

    #[test]
    fn normalised_magnitudes_are_order_one() {
        let n = Normalizer::paper_default();
        let raw = n.raw(&[6.0, 2900.0, 24.0, 0.0]);
        for v in raw {
            assert!(v.abs() <= 1.05, "raw feature {v} not O(1)");
        }
        let rel = n.relative(&[-22.4, 100.0, -25.0, 1.0]);
        for v in rel {
            assert!(v.abs() <= 1.05, "relative feature {v} not O(1)");
        }
    }

    #[test]
    fn truth_and_prediction_are_inverses() {
        let n = Normalizer::paper_default();
        let t = [3.2, 42.0, -7.5];
        let norm = n.truth(&t);
        let back = n.denorm_prediction(&norm);
        assert!((back.d_lat - t[0]).abs() < 1e-4);
        assert!((back.d_lon - t[1]).abs() < 1e-4);
        assert!((back.v_rel - t[2]).abs() < 1e-4);
    }

    #[test]
    fn relative_truth_geometry() {
        let next = RawState {
            lat: 4.0,
            lon: 530.0,
            vel: 25.0,
        };
        let ego = RawState {
            lat: 3.0,
            lon: 500.0,
            vel: 20.0,
        };
        let t = relative_truth(&next, &ego, 3.2);
        assert_eq!(t, [3.2, 30.0, 5.0]);
    }
}
