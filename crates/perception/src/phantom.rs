//! Target selection and the phantom-vehicle construction strategy
//! (paper §III-B, steps 1–3, Eqs. 4–6 and Fig. 3/4).
//!
//! Given the rolling sensor history, [`GraphBuilder::build`] produces the
//! 42-node spatial-temporal graph:
//!
//! 1. select the six target conventional vehicles around the ego and the
//!    six surrounding vehicles of each target;
//! 2. fill every missing vehicle with a phantom according to its missing
//!    kind — **occlusion** (mirrored through the occluder, Eq. 6, checked
//!    first), **inherent** (virtual boundary lane, Eq. 5) or **range**
//!    (placed at the sensor horizon, Eq. 4); neighbours of phantom targets
//!    are zero-padded;
//! 3. encode all nodes relative to the ego (Eqs. 7–8).

use crate::graph::{
    surrounding_node, target_node, Area, MissingKind, NodeSource, PredictedState, RawState,
    StGraph, AREAS, NODE_DIM, NUM_NODES, NUM_SURROUNDING, NUM_TARGETS,
};
use sensor::{ObservedState, SensorHistory};
use serde::{Deserialize, Serialize};
use traffic_sim::VehicleId;

/// Static parameters of the graph builder.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BuilderConfig {
    /// Number of real lanes κ.
    pub lanes: usize,
    /// Lane width, m.
    pub lane_width: f64,
    /// Sensor detection radius `R`, m.
    pub range: f64,
    /// Step length Δt, s.
    pub dt: f64,
    /// History depth `z`.
    pub z: usize,
    /// When false, the phantom strategy is disabled and every missing
    /// vehicle is zero-padded (the paper's HEAD-w/o-PVC ablation).
    pub phantoms_enabled: bool,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            lanes: 6,
            lane_width: 3.2,
            range: 100.0,
            dt: 0.5,
            z: 5,
            phantoms_enabled: true,
        }
    }
}

/// Builds spatial-temporal graphs from sensor history.
#[derive(Clone, Copy, Debug)]
pub struct GraphBuilder {
    cfg: BuilderConfig,
}

/// Raw per-step states of one node plus its provenance.
struct NodeTrack {
    states: Vec<RawState>,
    source: NodeSource,
}

impl GraphBuilder {
    /// Creates a builder.
    pub fn new(cfg: BuilderConfig) -> Self {
        Self { cfg }
    }

    /// Builder configuration.
    pub fn cfg(&self) -> &BuilderConfig {
        &self.cfg
    }

    /// Builds the graph for the current history window.
    ///
    /// # Panics
    /// Panics if the history holds no frame yet.
    pub fn build(&self, history: &SensorHistory) -> StGraph {
        assert!(
            !history.is_empty(),
            "sensor history must hold at least one frame"
        );
        let z = self.cfg.z;
        // lint:allow(panic) caller checked the history is non-empty before building phantoms
        let ego = history.ego_track(self.cfg.dt).expect("non-empty history");
        let ego_states: Vec<RawState> = ego.states.iter().map(raw_of).collect();
        // lint:allow(panic) caller checked the history is non-empty before building phantoms
        let latest = history.latest().expect("non-empty history");
        let observed = &latest.observed;
        // lint:allow(panic) SensorConfig requires z >= 1, so tracks hold at least one state
        let ego_latest = *ego_states.last().expect("z >= 1");

        // --- Step 1: select targets --------------------------------------
        let mut targets: Vec<NodeTrack> = Vec::with_capacity(NUM_TARGETS);
        for area in AREAS {
            let found = find_in_area(
                observed,
                ego_latest.lat,
                ego_latest.lon,
                area,
                &[latest.ego.id],
            );
            let track = match found {
                Some(id) => self.observed_track(history, id),
                None => self.missing_target(area, &ego_states),
            };
            targets.push(track);
        }

        // --- Step 2: surrounding vehicles / phantoms ----------------------
        let mut surroundings: Vec<Vec<NodeTrack>> = Vec::with_capacity(NUM_TARGETS);
        for (i, target) in targets.iter().enumerate() {
            let mut row = Vec::with_capacity(NUM_SURROUNDING);
            for (j, area) in AREAS.iter().enumerate() {
                // The reciprocal slot is always the ego itself (footnote 1).
                if j == NUM_SURROUNDING - 1 - i {
                    row.push(NodeTrack {
                        states: ego_states.clone(),
                        source: NodeSource::Ego,
                    });
                    continue;
                }
                if target.source.is_phantom() {
                    // Neighbours of an uncertain vehicle carry no signal.
                    row.push(zero_track(z));
                    continue;
                }
                // lint:allow(panic) SensorConfig requires z >= 1, so tracks hold at least one state
                let t_latest = target.states.last().expect("z >= 1");
                let exclude = [latest.ego.id, observed_id(&target.source)];
                let found = find_in_area(observed, t_latest.lat, t_latest.lon, *area, &exclude);
                let track = match found {
                    Some(id) => self.observed_track(history, id),
                    None => self.missing_surrounding(i, j, *area, target, &ego_states),
                };
                row.push(track);
            }
            surroundings.push(row);
        }

        // --- Step 3: relative encoding ------------------------------------
        let mut sources = [NodeSource::Ego; NUM_NODES];
        let mut frames = vec![[[0.0; NODE_DIM]; NUM_NODES]; z];
        for (i, t) in targets.iter().enumerate() {
            sources[target_node(i)] = t.source;
            for (tau, frame) in frames.iter_mut().enumerate() {
                frame[target_node(i)] = self.encode(&t.states[tau], t.source, &ego_states[tau]);
            }
        }
        for (i, row) in surroundings.iter().enumerate() {
            for (j, s) in row.iter().enumerate() {
                sources[surrounding_node(i, j)] = s.source;
                for (tau, frame) in frames.iter_mut().enumerate() {
                    frame[surrounding_node(i, j)] =
                        self.encode(&s.states[tau], s.source, &ego_states[tau]);
                }
            }
        }

        StGraph {
            frames,
            sources,
            ego_latest,
        }
    }

    fn observed_track(&self, history: &SensorHistory, id: VehicleId) -> NodeTrack {
        let t = history
            .track_of(id, self.cfg.dt)
            // lint:allow(panic) the id was read from this very frame two lines up
            .expect("id taken from latest frame");
        NodeTrack {
            states: t.states.iter().map(raw_of).collect(),
            source: NodeSource::Observed(id),
        }
    }

    /// Phantom construction for a missing *target* (Eqs. 4–5 with centre A).
    fn missing_target(&self, area: Area, ego: &[RawState]) -> NodeTrack {
        if !self.cfg.phantoms_enabled {
            return zero_track(ego.len());
        }
        // lint:allow(panic) SensorConfig requires z >= 1, so tracks hold at least one state
        let ego_lat = ego.last().expect("z >= 1").lat;
        let kind = self.missing_kind_for(area, ego_lat);
        self.phantom_track(area, kind, ego, None)
    }

    /// Phantom construction for a missing surrounding vehicle `C_{i.j}`.
    ///
    /// Occlusion missing is checked first (paper: "we prioritise the
    /// occlusion missing"): the diagonal slot `j == i` sits exactly in the
    /// shadow the target casts from the ego's viewpoint (Fig. 4).
    fn missing_surrounding(
        &self,
        i: usize,
        j: usize,
        area: Area,
        target: &NodeTrack,
        ego: &[RawState],
    ) -> NodeTrack {
        if !self.cfg.phantoms_enabled {
            return zero_track(ego.len());
        }
        // lint:allow(panic) SensorConfig requires z >= 1, so tracks hold at least one state
        let centre_lat = target.states.last().expect("z >= 1").lat;
        let occludable = j == i
            && centre_lat + area.lane_offset() as f64 >= 1.0
            && centre_lat + area.lane_offset() as f64 <= self.cfg.lanes as f64;
        if occludable {
            let states = target
                .states
                .iter()
                .zip(ego)
                .map(|(c, a)| RawState {
                    lat: c.lat + area.lane_offset() as f64,
                    lon: c.lon + (c.lon - a.lon),
                    vel: c.vel,
                })
                .collect();
            return NodeTrack {
                states,
                source: NodeSource::Phantom(MissingKind::Occlusion),
            };
        }
        let kind = self.missing_kind_for(area, centre_lat);
        self.phantom_track(area, kind, &target.states, Some(target.source))
    }

    fn missing_kind_for(&self, area: Area, centre_lat: f64) -> MissingKind {
        let off = area.lane_offset() as f64;
        let target_lat = centre_lat + off;
        if target_lat < 1.0 || target_lat > self.cfg.lanes as f64 {
            MissingKind::Inherent
        } else {
            MissingKind::Range
        }
    }

    /// Eqs. 4/5 relative to an arbitrary centre track.
    fn phantom_track(
        &self,
        area: Area,
        kind: MissingKind,
        centre: &[RawState],
        _centre_source: Option<NodeSource>,
    ) -> NodeTrack {
        let states = centre
            .iter()
            .map(|c| match kind {
                MissingKind::Inherent => RawState {
                    lat: if area.lane_offset() < 0 {
                        0.0
                    } else {
                        self.cfg.lanes as f64 + 1.0
                    },
                    lon: c.lon,
                    vel: c.vel,
                },
                _ => RawState {
                    lat: c.lat + area.lane_offset() as f64,
                    lon: c.lon
                        + if area.is_front() {
                            self.cfg.range
                        } else {
                            -self.cfg.range
                        },
                    vel: c.vel,
                },
            })
            .collect();
        NodeTrack {
            states,
            source: NodeSource::Phantom(kind),
        }
    }

    /// Eq. 7/8 encoding: relative states for conventional and phantom
    /// nodes, raw states for ego slots, all-zero (with IF=1) for padding.
    fn encode(&self, s: &RawState, source: NodeSource, ego: &RawState) -> [f64; NODE_DIM] {
        match source {
            NodeSource::Ego => [ego.lat, ego.lon, ego.vel, 0.0],
            NodeSource::Phantom(MissingKind::ZeroPadded) => [0.0, 0.0, 0.0, 1.0],
            _ => [
                (s.lat - ego.lat) * self.cfg.lane_width,
                s.lon - ego.lon,
                s.vel - ego.vel,
                source.if_flag(),
            ],
        }
    }
}

/// Converts a prediction back to absolute coordinates using the ego state
/// the graph was encoded against.
pub fn de_relativise(p: &PredictedState, ego: &RawState, lane_width: f64) -> RawState {
    RawState {
        lat: ego.lat + p.d_lat / lane_width,
        lon: ego.lon + p.d_lon,
        vel: ego.vel + p.v_rel,
    }
}

/// All-zero track for zero-padded nodes.
fn zero_track(z: usize) -> NodeTrack {
    NodeTrack {
        states: vec![
            RawState {
                lat: 0.0,
                lon: 0.0,
                vel: 0.0
            };
            z
        ],
        source: NodeSource::Phantom(MissingKind::ZeroPadded),
    }
}

fn raw_of(s: &ObservedState) -> RawState {
    RawState {
        lat: s.lane as f64 + 1.0,
        lon: s.pos,
        vel: s.vel,
    }
}

fn observed_id(source: &NodeSource) -> VehicleId {
    match source {
        NodeSource::Observed(id) => *id,
        _ => VehicleId(u64::MAX),
    }
}

/// Finds the nearest observed vehicle in `area` relative to a centre at
/// (`centre_lat` 1-based, `centre_lon`).
fn find_in_area(
    observed: &[ObservedState],
    centre_lat: f64,
    centre_lon: f64,
    area: Area,
    exclude: &[VehicleId],
) -> Option<VehicleId> {
    let want_lat = centre_lat + area.lane_offset() as f64;
    observed
        .iter()
        .filter(|o| !exclude.contains(&o.id))
        .filter(|o| (o.lane as f64 + 1.0 - want_lat).abs() < 0.5)
        .filter(|o| {
            if area.is_front() {
                o.pos > centre_lon
            } else {
                o.pos <= centre_lon
            }
        })
        .min_by(|a, b| {
            let da = (a.pos - centre_lon).abs();
            let db = (b.pos - centre_lon).abs();
            // lint:allow(panic) distances were filtered finite before ranking
            da.partial_cmp(&db).expect("finite").then(a.id.cmp(&b.id))
        })
        .map(|o| o.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensor::{SensorFrame, SensorHistory};

    const Z: usize = 5;

    fn cfg() -> BuilderConfig {
        BuilderConfig {
            lanes: 6,
            lane_width: 3.2,
            range: 100.0,
            dt: 0.5,
            z: Z,
            phantoms_enabled: true,
        }
    }

    fn obs(id: u64, lane: usize, pos: f64, vel: f64) -> ObservedState {
        ObservedState {
            id: VehicleId(id),
            lane,
            pos,
            vel,
        }
    }

    /// History of `Z` identical frames (static scene) for geometry tests.
    fn static_history(ego: ObservedState, observed: Vec<ObservedState>) -> SensorHistory {
        let mut h = SensorHistory::new(Z);
        for step in 0..Z {
            h.push(SensorFrame {
                step: step as u64,
                ego,
                observed: observed.clone(),
            });
        }
        h
    }

    #[test]
    fn full_neighbourhood_no_phantoms_needed_except_structure() {
        // Ego in lane 2 (0-based), completely boxed in: all 6 targets real.
        let ego = obs(0, 2, 500.0, 20.0);
        let observed = vec![
            obs(1, 1, 520.0, 20.0), // front-left
            obs(2, 2, 525.0, 20.0), // front
            obs(3, 3, 530.0, 20.0), // front-right
            obs(4, 1, 480.0, 20.0), // rear-left
            obs(5, 2, 475.0, 20.0), // rear
            obs(6, 3, 470.0, 20.0), // rear-right
        ];
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, observed));
        for i in 0..NUM_TARGETS {
            assert!(
                matches!(g.sources[target_node(i)], NodeSource::Observed(_)),
                "target {i} should be observed, got {:?}",
                g.sources[target_node(i)]
            );
        }
        assert_eq!(g.target_id(1), Some(VehicleId(2)));
        assert_eq!(g.target_mask(), [1.0; 6]);
    }

    #[test]
    fn empty_road_constructs_range_phantoms_at_sensor_horizon() {
        let ego = obs(0, 2, 500.0, 20.0);
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, vec![]));
        // Front target: phantom at lon + R, same lane, ego speed (Eq. 4).
        assert_eq!(
            g.sources[target_node(1)],
            NodeSource::Phantom(MissingKind::Range)
        );
        let h = g.frames[Z - 1][target_node(1)];
        assert!((h[0] - 0.0).abs() < 1e-9, "front phantom d_lat");
        assert!((h[1] - 100.0).abs() < 1e-9, "front phantom d_lon = +R");
        assert!((h[2] - 0.0).abs() < 1e-9, "front phantom matches ego speed");
        assert_eq!(h[3], 1.0, "IF flag set");
        // Rear-left target: d_lon = -R, d_lat = -lane_width.
        let h = g.frames[Z - 1][target_node(3)];
        assert!((h[0] + 3.2).abs() < 1e-9);
        assert!((h[1] + 100.0).abs() < 1e-9);
        assert_eq!(g.target_mask(), [0.0; 6]);
    }

    #[test]
    fn leftmost_lane_gets_inherent_boundary_phantoms() {
        // Ego in the leftmost lane (0-based 0 == paper lane 1).
        let ego = obs(0, 0, 500.0, 20.0);
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, vec![]));
        // Front-left & rear-left are inherent: lat 0 (paper), lon = A.lon.
        for i in [0usize, 3] {
            assert_eq!(
                g.sources[target_node(i)],
                NodeSource::Phantom(MissingKind::Inherent),
                "target {i}"
            );
            let h = g.frames[Z - 1][target_node(i)];
            // d_lat = (0 - 1) * width = -3.2; d_lon = 0; moving boundary.
            assert!((h[0] + 3.2).abs() < 1e-9);
            assert!(h[1].abs() < 1e-9);
            assert!(h[2].abs() < 1e-9);
        }
        // Front (same lane) is range missing, not inherent.
        assert_eq!(
            g.sources[target_node(1)],
            NodeSource::Phantom(MissingKind::Range)
        );
    }

    #[test]
    fn rightmost_lane_boundary_phantom_at_kappa_plus_one() {
        let ego = obs(0, 5, 500.0, 20.0); // paper lane 6 of 6
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, vec![]));
        for i in [2usize, 5] {
            assert_eq!(
                g.sources[target_node(i)],
                NodeSource::Phantom(MissingKind::Inherent)
            );
            let h = g.frames[Z - 1][target_node(i)];
            // lat = κ+1 = 7, ego lat 6 -> d_lat = +3.2.
            assert!((h[0] - 3.2).abs() < 1e-9);
        }
    }

    #[test]
    fn occlusion_phantom_mirrored_through_front_target() {
        // Front target observed; its own front (slot (2,2) in the paper,
        // 0-based (1,1)) is missing -> occlusion phantom mirrored through
        // the target: lon = C.lon + d_lon(C, A).
        let ego = obs(0, 2, 500.0, 20.0);
        let front = obs(2, 2, 530.0, 18.0);
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, vec![front]));
        let node = surrounding_node(1, 1);
        assert_eq!(g.sources[node], NodeSource::Phantom(MissingKind::Occlusion));
        let h = g.frames[Z - 1][node];
        // d_lon = (530 + 30) - 500 = 60; same lane; speed of the occluder.
        assert!(
            (h[1] - 60.0).abs() < 1e-9,
            "mirrored longitudinal offset, got {}",
            h[1]
        );
        assert!(h[0].abs() < 1e-9);
        assert!(
            (h[2] - (-2.0)).abs() < 1e-9,
            "phantom inherits occluder speed"
        );
    }

    #[test]
    fn occlusion_phantom_for_rear_target_mirrors_backwards() {
        let ego = obs(0, 2, 500.0, 20.0);
        let rear = obs(5, 2, 470.0, 22.0);
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, vec![rear]));
        let node = surrounding_node(4, 4); // rear target's rear slot
        assert_eq!(g.sources[node], NodeSource::Phantom(MissingKind::Occlusion));
        let h = g.frames[Z - 1][node];
        assert!((h[1] - (440.0 - 500.0)).abs() < 1e-9, "got {}", h[1]);
    }

    #[test]
    fn surroundings_of_phantom_targets_are_zero_padded() {
        let ego = obs(0, 2, 500.0, 20.0);
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, vec![]));
        // Target 1 (front) is a phantom; its non-reciprocal neighbours are
        // zero-padded with IF = 1.
        for j in 0..NUM_SURROUNDING {
            let node = surrounding_node(1, j);
            if j == NUM_SURROUNDING - 1 - 1 {
                assert_eq!(
                    g.sources[node],
                    NodeSource::Ego,
                    "reciprocal slot is the ego"
                );
                let h = g.frames[Z - 1][node];
                assert!((h[0] - 3.0).abs() < 1e-9, "ego raw lat (1-based lane 3)");
                assert!((h[1] - 500.0).abs() < 1e-9);
            } else {
                assert_eq!(
                    g.sources[node],
                    NodeSource::Phantom(MissingKind::ZeroPadded)
                );
                assert_eq!(g.frames[Z - 1][node], [0.0, 0.0, 0.0, 1.0]);
            }
        }
    }

    #[test]
    fn reciprocal_slots_carry_raw_ego_state_everywhere() {
        let ego = obs(0, 2, 500.0, 20.0);
        let observed = vec![
            obs(1, 1, 520.0, 20.0),
            obs(2, 2, 525.0, 20.0),
            obs(3, 3, 530.0, 20.0),
            obs(4, 1, 480.0, 20.0),
            obs(5, 2, 475.0, 20.0),
            obs(6, 3, 470.0, 20.0),
        ];
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, observed));
        for i in 0..NUM_TARGETS {
            let node = surrounding_node(i, NUM_SURROUNDING - 1 - i);
            assert_eq!(g.sources[node], NodeSource::Ego, "target {i}");
            let h = g.frames[Z - 1][node];
            assert_eq!(h, [3.0, 500.0, 20.0, 0.0]);
        }
    }

    #[test]
    fn disabled_phantoms_zero_pad_missing_targets() {
        let mut c = cfg();
        c.phantoms_enabled = false;
        let ego = obs(0, 2, 500.0, 20.0);
        let g = GraphBuilder::new(c).build(&static_history(ego, vec![]));
        for i in 0..NUM_TARGETS {
            assert_eq!(
                g.sources[target_node(i)],
                NodeSource::Phantom(MissingKind::ZeroPadded)
            );
            assert_eq!(g.frames[Z - 1][target_node(i)], [0.0, 0.0, 0.0, 1.0]);
        }
    }

    #[test]
    fn nearest_vehicle_wins_each_area() {
        let ego = obs(0, 2, 500.0, 20.0);
        let observed = vec![
            obs(1, 2, 560.0, 20.0), // far front
            obs(2, 2, 525.0, 20.0), // near front -> selected
        ];
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, observed));
        assert_eq!(g.target_id(1), Some(VehicleId(2)));
    }

    #[test]
    fn relative_encoding_matches_equations() {
        let ego = obs(0, 2, 500.0, 20.0);
        let front_right = obs(3, 3, 530.0, 25.0);
        let g = GraphBuilder::new(cfg()).build(&static_history(ego, vec![front_right]));
        let h = g.frames[Z - 1][target_node(2)];
        assert!((h[0] - 3.2).abs() < 1e-9, "d_lat = 1 lane * 3.2 m");
        assert!((h[1] - 30.0).abs() < 1e-9, "d_lon = 30 m");
        assert!((h[2] - 5.0).abs() < 1e-9, "v_rel = +5 m/s");
        assert_eq!(h[3], 0.0, "IF = 0 for an observed vehicle");
    }

    #[test]
    fn de_relativise_roundtrip() {
        let ego = RawState {
            lat: 3.0,
            lon: 500.0,
            vel: 20.0,
        };
        let p = PredictedState {
            d_lat: 3.2,
            d_lon: 30.0,
            v_rel: 5.0,
        };
        let abs = de_relativise(&p, &ego, 3.2);
        assert!((abs.lat - 4.0).abs() < 1e-9);
        assert!((abs.lon - 530.0).abs() < 1e-9);
        assert!((abs.vel - 25.0).abs() < 1e-9);
    }

    #[test]
    fn moving_history_is_tracked_per_step() {
        // Ego advancing 10 m per step; front vehicle advancing 12 m.
        let mut h = SensorHistory::new(Z);
        for k in 0..Z {
            let ego = obs(0, 2, 500.0 + 10.0 * k as f64, 20.0);
            let front = obs(2, 2, 540.0 + 12.0 * k as f64, 24.0);
            h.push(SensorFrame {
                step: k as u64,
                ego,
                observed: vec![front],
            });
        }
        let g = GraphBuilder::new(cfg()).build(&h);
        // d_lon grows by 2 m per step: 40, 42, 44, 46, 48.
        for (tau, frame) in g.frames.iter().enumerate() {
            let d = frame[target_node(1)][1];
            assert!(
                (d - (40.0 + 2.0 * tau as f64)).abs() < 1e-9,
                "tau {tau}: {d}"
            );
        }
    }
}
