//! Property tests for the phantom-construction strategy: for *any*
//! sensor-consistent scene, the builder must produce a complete, bounded,
//! well-formed spatial-temporal graph.

// Tests may unwrap freely; the unwrap audit targets library paths only.
#![allow(clippy::unwrap_used)]

use perception::{
    surrounding_node, BuilderConfig, GraphBuilder, MissingKind, NodeSource, NUM_NODES,
    NUM_SURROUNDING, NUM_TARGETS,
};
use proptest::prelude::*;
use sensor::{ObservedState, SensorFrame, SensorHistory};
use traffic_sim::VehicleId;

const Z: usize = 5;

fn cfg() -> BuilderConfig {
    BuilderConfig {
        lanes: 6,
        lane_width: 3.2,
        range: 100.0,
        dt: 0.5,
        z: Z,
        phantoms_enabled: true,
    }
}

/// Random scene: ego + up to 12 observed vehicles within sensor range.
fn scene_strategy() -> impl Strategy<Value = (ObservedState, Vec<ObservedState>)> {
    let ego =
        (0usize..6, 200.0f64..2000.0, 5.0f64..25.0).prop_map(|(lane, pos, vel)| ObservedState {
            id: VehicleId(0),
            lane,
            pos,
            vel,
        });
    let others = prop::collection::vec((0usize..6, -95.0f64..95.0, 5.0f64..25.0), 0..12);
    (ego, others).prop_map(|(ego, others)| {
        let observed = others
            .into_iter()
            .enumerate()
            .filter(|(_, (lane, off, _))| {
                // Keep vehicles physically distinct from the ego.
                !(*lane == ego.lane && off.abs() < 6.0)
            })
            .map(|(k, (lane, off, vel))| ObservedState {
                id: VehicleId(k as u64 + 1),
                lane,
                pos: ego.pos + off,
                vel,
            })
            .collect();
        (ego, observed)
    })
}

fn history_of(ego: ObservedState, observed: Vec<ObservedState>) -> SensorHistory {
    let mut h = SensorHistory::new(Z);
    for step in 0..Z {
        let dt = step as f64 * 0.5;
        let ego_t = ObservedState {
            pos: ego.pos + ego.vel * dt,
            ..ego
        };
        let obs_t = observed
            .iter()
            .map(|o| ObservedState {
                pos: o.pos + o.vel * dt,
                ..*o
            })
            .collect();
        h.push(SensorFrame {
            step: step as u64,
            ego: ego_t,
            observed: obs_t,
        });
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_is_always_complete_and_bounded((ego, observed) in scene_strategy()) {
        let graph = GraphBuilder::new(cfg()).build(&history_of(ego, observed));
        prop_assert_eq!(graph.depth(), Z);
        for frame in &graph.frames {
            prop_assert_eq!(frame.len(), NUM_NODES);
            for (node, h) in frame.iter().enumerate() {
                for v in h {
                    prop_assert!(v.is_finite(), "node {node} has non-finite feature");
                }
                // IF flag is binary.
                // lint:allow(float-eq) IF flags are exact 0.0/1.0 sentinels
                prop_assert!(h[3] == 0.0 || h[3] == 1.0);
                match graph.sources[node] {
                    NodeSource::Phantom(MissingKind::ZeroPadded) => {
                        prop_assert_eq!(h[..3].to_vec(), vec![0.0, 0.0, 0.0]);
                    }
                    NodeSource::Ego => {
                        // Raw ego features: lane in [1, 6], lon positive.
                        prop_assert!(h[0] >= 1.0 && h[0] <= 6.0);
                        prop_assert!(h[1] > 0.0);
                    }
                    _ => {
                        // Relative features bounded by sensor geometry:
                        // the occlusion mirror can reach ~2R, and over the
                        // z-step history a fast target drifts further.
                        prop_assert!(h[1].abs() <= 2.0 * (100.0 + 60.0), "d_lon {}", h[1]);
                        prop_assert!(h[0].abs() <= 8.0 * 3.2, "d_lat {}", h[0]);
                    }
                }
            }
        }
    }

    #[test]
    fn observed_targets_match_sensor_ids((ego, observed) in scene_strategy()) {
        let graph = GraphBuilder::new(cfg()).build(&history_of(ego, observed.clone()));
        for i in 0..NUM_TARGETS {
            if let Some(id) = graph.target_id(i) {
                prop_assert!(
                    observed.iter().any(|o| o.id == id),
                    "target {i} id {id:?} not among observed vehicles"
                );
            }
        }
    }

    #[test]
    fn reciprocal_slots_always_ego((ego, observed) in scene_strategy()) {
        let graph = GraphBuilder::new(cfg()).build(&history_of(ego, observed));
        for i in 0..NUM_TARGETS {
            let node = surrounding_node(i, NUM_SURROUNDING - 1 - i);
            prop_assert_eq!(graph.sources[node], NodeSource::Ego);
        }
    }

    #[test]
    fn phantom_targets_have_zero_padded_neighbourhoods((ego, observed) in scene_strategy()) {
        let graph = GraphBuilder::new(cfg()).build(&history_of(ego, observed));
        for i in 0..NUM_TARGETS {
            if graph.target_is_phantom(i) {
                for j in 0..NUM_SURROUNDING {
                    if j == NUM_SURROUNDING - 1 - i {
                        continue; // reciprocal ego slot
                    }
                    prop_assert_eq!(
                        graph.sources[surrounding_node(i, j)],
                        NodeSource::Phantom(MissingKind::ZeroPadded)
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_phantoms_never_construct((ego, observed) in scene_strategy()) {
        let mut c = cfg();
        c.phantoms_enabled = false;
        let graph = GraphBuilder::new(c).build(&history_of(ego, observed));
        for node in 0..NUM_NODES {
            if let NodeSource::Phantom(kind) = graph.sources[node] {
                prop_assert_eq!(kind, MissingKind::ZeroPadded, "node {}", node);
            }
        }
    }

    #[test]
    fn front_target_is_ahead_and_nearest((ego, observed) in scene_strategy()) {
        let graph = GraphBuilder::new(cfg()).build(&history_of(ego, observed.clone()));
        // Selection happens at the *latest* frame: propagate positions to
        // step Z-1 before comparing.
        let horizon = (Z - 1) as f64 * 0.5;
        let at_latest =
            |o: &ObservedState| o.pos + o.vel * horizon;
        let ego_latest = ego.pos + ego.vel * horizon;
        if let Some(front_id) = graph.target_id(1) {
            let front = observed.iter().find(|o| o.id == front_id).unwrap();
            prop_assert_eq!(front.lane, ego.lane);
            prop_assert!(at_latest(front) > ego_latest);
            for o in &observed {
                if o.lane == ego.lane && at_latest(o) > ego_latest {
                    prop_assert!(
                        at_latest(o) >= at_latest(front),
                        "nearer front vehicle {:?} missed",
                        o.id
                    );
                }
            }
        }
    }
}
