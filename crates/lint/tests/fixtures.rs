//! End-to-end engine behaviour on the seeded fixture workspace
//! (`crates/lint/fixtures/ws`), which holds one file of every violation
//! kind plus a registry with a dead key. Keep the expected counts in sync
//! with `fixtures/ws/crates/decision/src/seeded.rs`.

use std::path::PathBuf;
use std::process::Command;

use lint::{run, Options, Severity};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn fixture_report() -> lint::Report {
    run(&Options {
        root: fixture_root(),
        paths: Vec::new(),
        deny: Vec::new(),
        threads: 1,
        cache: None,
    })
    .expect("lint run on fixture workspace")
}

#[test]
fn seeded_fixture_produces_the_expected_findings() {
    let report = fixture_report();
    let count = |rule: &str| report.diags.iter().filter(|d| d.rule == rule).count();
    let listing = report.render_human();
    assert_eq!(count("hash-collections"), 3, "{listing}");
    assert_eq!(count("wallclock"), 1, "{listing}");
    assert_eq!(count("thread-spawn"), 1, "{listing}");
    assert_eq!(count("index-panic"), 2, "{listing}");
    assert_eq!(count("float-eq"), 1, "{listing}");
    assert_eq!(count("float-cast"), 1, "{listing}");
    assert_eq!(count("telemetry-keys"), 3, "{listing}");
    assert_eq!(count("recorder-keys"), 1, "{listing}");
    assert_eq!(count("graph-churn"), 1, "{listing}");
    assert_eq!(count("serve-no-graph-new"), 1, "{listing}");
    assert_eq!(
        count("panic"),
        2,
        "seeded.rs unwrap + paths.rs unwrap; the expect is allowed: {listing}"
    );
    assert_eq!(count("allow-no-reason"), 1, "{listing}");
    assert_eq!(count("unused-allow"), 1, "{listing}");
    assert_eq!(count("lint-header"), 2, "{listing}");
    assert_eq!(
        count("determinism-taint"),
        3,
        "env reads reached from the traffic_sim::step, apply_migrations \
         and head::Fleet::step sinks: {listing}"
    );
    assert_eq!(
        count("serve-reachability"),
        2,
        "one unwrap error + one aggregated indexing warning: {listing}"
    );
    assert_eq!(
        count("telemetry-liveness"),
        1,
        "ZOMBIE_KEY referenced only from dead code: {listing}"
    );
    assert_eq!(report.errors(), 23, "{listing}");
    assert_eq!(report.warnings(), 4, "{listing}");
}

#[test]
fn taint_chain_crosses_the_crate_boundary() {
    let report = fixture_report();
    let taint = report
        .diags
        .iter()
        .find(|d| d.rule == "determinism-taint")
        .expect("taint diagnostic");
    assert!(
        taint
            .message
            .contains("traffic_sim::Simulation::step -> decision::jitter"),
        "chain names both crates: {}",
        taint.message
    );
    let serve = report
        .diags
        .iter()
        .find(|d| d.rule == "serve-reachability" && d.severity == Severity::Error)
        .expect("serve-reachability diagnostic");
    assert!(
        serve
            .message
            .contains("serve::Handler::handle -> decision::risky_answer"),
        "chain starts in the serve crate: {}",
        serve.message
    );
}

#[test]
fn dead_key_is_reported_at_its_declaration() {
    let report = fixture_report();
    let dead = report
        .diags
        .iter()
        .find(|d| d.message.contains("DEAD_KEY"))
        .expect("dead-key diagnostic");
    assert!(dead.file.ends_with("telemetry/src/keys.rs"));
    assert_eq!(dead.severity, Severity::Error);
}

#[test]
fn explicit_path_limits_the_walk() {
    let report = run(&Options {
        root: fixture_root(),
        paths: vec![PathBuf::from("crates/decision/src/lib.rs")],
        deny: Vec::new(),
        threads: 1,
        cache: None,
    })
    .expect("lint run on one file");
    assert_eq!(report.files, 1);
    assert!(report.diags.iter().all(|d| d.rule == "lint-header"));
}

#[test]
fn deny_flag_promotes_warnings() {
    let report = run(&Options {
        root: fixture_root(),
        paths: Vec::new(),
        deny: vec![
            "index-panic".to_string(),
            "unused-allow".to_string(),
            "serve-reachability".to_string(),
        ],
        threads: 1,
        cache: None,
    })
    .expect("lint run with deny");
    assert_eq!(report.warnings(), 0);
    assert_eq!(report.errors(), 27);
}

#[test]
fn headlint_binary_exits_one_on_the_seeded_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--root"])
        .arg(fixture_root())
        .output()
        .expect("spawn headlint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[panic]"), "{stdout}");
    assert!(stdout.contains("23 errors"), "{stdout}");
}

#[test]
fn headlint_binary_json_report_is_parseable() {
    let out = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--json", "--root"])
        .arg(fixture_root())
        .output()
        .expect("spawn headlint --json");
    assert_eq!(out.status.code(), Some(1));
    let json =
        telemetry::Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON report");
    assert_eq!(json.get("tool").and_then(|j| j.as_str()), Some("headlint"));
    assert_eq!(json.get("errors").and_then(|j| j.as_f64()), Some(23.0));
    let diags = match json.get("diagnostics") {
        Some(telemetry::Json::Arr(items)) => items.len(),
        other => panic!("diagnostics not an array: {other:?}"),
    };
    assert_eq!(diags, 27);
}

#[test]
fn headlint_binary_telemetry_dir_layout() {
    let dir = std::env::temp_dir().join(format!("headlint-test-{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--telemetry"])
        .arg(&dir)
        .args(["--root"])
        .arg(fixture_root())
        .output()
        .expect("spawn headlint --telemetry");
    assert_eq!(out.status.code(), Some(1));
    let report_path = dir.join("lint_report.json");
    let text = std::fs::read_to_string(&report_path).expect("lint_report.json written");
    let json = telemetry::Json::parse(text.trim()).expect("valid JSON file");
    assert_eq!(json.get("warnings").and_then(|j| j.as_f64()), Some(4.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn headlint_binary_rejects_unknown_flags_and_rules() {
    let bad_flag = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--bogus"])
        .output()
        .expect("spawn headlint --bogus");
    assert_eq!(bad_flag.status.code(), Some(2));
    let bad_rule = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--deny", "not-a-rule"])
        .output()
        .expect("spawn headlint --deny not-a-rule");
    assert_eq!(bad_rule.status.code(), Some(2));
}

#[test]
fn list_rules_covers_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--list-rules"])
        .output()
        .expect("spawn headlint --list-rules");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in lint::RULES {
        assert!(stdout.contains(rule.name), "missing {}", rule.name);
    }
}
