//! The workspace must stay clean under its own linter — this is the
//! enforcement test behind the CI `headlint` step: every error-severity
//! finding in the walked tree (`crates/*/{src,tests,benches}`, root
//! `examples/` and `tests/`) is either fixed or carries a reason-bearing
//! `// lint:allow(...)` directive. The determinism contracts are pinned
//! here too: the walk covers every `.rs` file in the repo, and output is
//! byte-identical across thread counts and cache states.

use std::path::PathBuf;
use std::process::Command;

use lint::{run, workspace_paths, Options, Severity};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

fn opts() -> Options {
    Options {
        root: workspace_root(),
        paths: Vec::new(),
        deny: Vec::new(),
        threads: 1,
        cache: None,
    }
}

#[test]
fn workspace_is_lint_clean() {
    let report = run(&opts()).expect("lint run over the workspace");
    assert!(
        report.files >= 50,
        "walk looks truncated: only {} files",
        report.files
    );
    let errors: Vec<String> = report
        .diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{}:{}:{} [{}] {}", d.file, d.line, d.col, d.rule, d.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has lint errors:\n{}",
        errors.join("\n")
    );
}

#[test]
fn workspace_has_no_stale_allow_directives() {
    let report = run(&opts()).expect("lint run over the workspace");
    let stale: Vec<String> = report
        .diags
        .iter()
        .filter(|d| d.rule == "unused-allow")
        .map(|d| format!("{}:{}", d.file, d.line))
        .collect();
    assert!(
        stale.is_empty(),
        "stale lint:allow directives:\n{}",
        stale.join("\n")
    );
}

/// Every `.rs` file in the repository is visited by the walker, so a new
/// directory of Rust code cannot silently escape the linter. Generated
/// trees (`target/`, `vendor/`) and the intentionally-broken lint
/// fixtures are the only exclusions.
#[test]
fn walker_covers_every_rust_file_in_the_repo() {
    let root = workspace_root();
    let walked: std::collections::BTreeSet<String> = workspace_paths(&root)
        .expect("workspace walk")
        .into_iter()
        .map(|p| {
            p.strip_prefix(&root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();

    let mut missing = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().to_string();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(&root)
                    .expect("file under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                if !walked.contains(&rel) {
                    missing.push(rel);
                }
            }
        }
    }
    missing.sort();
    assert!(
        missing.is_empty(),
        "rust files the walker never visits:\n{}",
        missing.join("\n")
    );
}

/// Snapshot of the real tree's diagnostic totals. A drift in either
/// direction is meaningful: new warnings should be conscious, and a
/// sudden drop usually means a pass stopped firing.
#[test]
fn real_tree_diagnostic_totals_are_pinned() {
    let report = run(&opts()).expect("lint run over the workspace");
    assert_eq!(report.errors(), 0, "{}", report.render_human());
    let warnings = report
        .diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    assert!(
        (300..=700).contains(&warnings),
        "advisory warning count drifted far from the pinned band: {warnings}"
    );
    let serve_warns = report
        .diags
        .iter()
        .filter(|d| d.rule == "serve-reachability")
        .count();
    assert!(
        serve_warns > 0,
        "the serve daemon calls indexing code; the reachability pass should see it"
    );
}

/// The engine's output is a pure function of the tree: any thread count
/// and any cache state must produce byte-identical reports.
#[test]
fn parallel_and_cached_runs_are_byte_identical() {
    let serial = run(&opts()).expect("serial run");
    let mut par4 = opts();
    par4.threads = 4;
    let parallel = run(&par4).expect("4-thread run");
    assert_eq!(
        serial.render_human(),
        parallel.render_human(),
        "thread count changed the report"
    );

    let dir = std::env::temp_dir().join(format!("headlint-selflint-{}", std::process::id()));
    let cache_path = dir.join("lint_cache.json");
    let mut cold = opts();
    cold.cache = Some(cache_path.clone());
    let first = run(&cold).expect("cold-cache run");
    assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
    assert!(first.cache_misses > 0);
    let second = run(&cold).expect("warm-cache run");
    assert_eq!(
        second.cache_misses, 0,
        "unchanged tree must be fully served from cache"
    );
    assert_eq!(
        serial.render_human(),
        second.render_human(),
        "cache changed the report"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn headlint_binary_exits_zero_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn headlint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("0 errors"), "{stdout}");
}

#[test]
fn headlint_binary_writes_sarif() {
    let dir = std::env::temp_dir().join(format!("headlint-sarif-{}", std::process::id()));
    let sarif_path = dir.join("lint_report.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--sarif-out"])
        .arg(&sarif_path)
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn headlint --sarif-out");
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&sarif_path).expect("sarif written");
    let doc = telemetry::Json::parse(text.trim()).expect("valid SARIF JSON");
    assert_eq!(
        doc.get("version").and_then(|j| j.as_str()),
        Some("2.1.0"),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
