//! The workspace must stay clean under its own linter — this is the
//! enforcement test behind the CI `headlint` step: every error-severity
//! finding in `crates/*/src` or `crates/*/tests` is either fixed or
//! carries a reason-bearing `// lint:allow(...)` directive.

use std::path::PathBuf;
use std::process::Command;

use lint::{run, Options, Severity};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let report = run(&Options {
        root: workspace_root(),
        paths: Vec::new(),
        deny: Vec::new(),
    })
    .expect("lint run over the workspace");
    assert!(
        report.files >= 50,
        "walk looks truncated: only {} files",
        report.files
    );
    let errors: Vec<String> = report
        .diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{}:{}:{} [{}] {}", d.file, d.line, d.col, d.rule, d.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has lint errors:\n{}",
        errors.join("\n")
    );
}

#[test]
fn workspace_has_no_stale_allow_directives() {
    let report = run(&Options {
        root: workspace_root(),
        paths: Vec::new(),
        deny: Vec::new(),
    })
    .expect("lint run over the workspace");
    let stale: Vec<String> = report
        .diags
        .iter()
        .filter(|d| d.rule == "unused-allow")
        .map(|d| format!("{}:{}", d.file, d.line))
        .collect();
    assert!(
        stale.is_empty(),
        "stale lint:allow directives:\n{}",
        stale.join("\n")
    );
}

#[test]
fn headlint_binary_exits_zero_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_headlint"))
        .args(["--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn headlint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("0 errors"), "{stdout}");
}
