//! A hand-rolled Rust lexer.
//!
//! `headlint` runs where the cargo registry is unreachable, so it cannot
//! lean on `syn`/`proc-macro2`; instead this module tokenises Rust source
//! directly. It understands everything the passes need to be *sound
//! about*: line and nested block comments, string/char literals (plain,
//! byte, and raw with any `#` count), lifetimes vs char literals, float vs
//! integer literals, and multi-character operators. Every token carries a
//! 1-based line:column span so diagnostics are clickable.
//!
//! The lexer is intentionally forgiving: an unterminated literal consumes
//! to end-of-file rather than failing, because a linter must keep walking
//! the rest of the workspace.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `3f32`).
    Float,
    /// Plain or byte string literal, quotes included (`"x"`, `b"x"`).
    Str,
    /// Raw string literal, hashes and quotes included (`r#"x"#`).
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `//` or `/* */` comment, markers included.
    Comment,
    /// Punctuation / operator, possibly multi-character (`==`, `::`).
    Punct,
}

/// One token with its source span.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of lexeme.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

impl Tok {
    /// For string tokens: the literal's inner text, with quote characters,
    /// `b`/`r` prefixes and raw-string hashes stripped (escape sequences
    /// are left as written). `None` for non-string tokens.
    pub fn str_value(&self) -> Option<&str> {
        match self.kind {
            TokKind::Str | TokKind::RawStr => {
                let t = self.text.trim_start_matches(['b', 'r']);
                let t = t.trim_matches('#');
                t.strip_prefix('"').and_then(|t| t.strip_suffix('"'))
            }
            _ => None,
        }
    }

    /// True for `Punct` tokens equal to `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True for `Ident` tokens equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenises `src`, returning every token including comments.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while !cur.eof() {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        let b = cur.peek(0);
        let kind = if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        } else if b == b'/' && cur.peek(1) == b'/' {
            lex_line_comment(&mut cur)
        } else if b == b'/' && cur.peek(1) == b'*' {
            lex_block_comment(&mut cur)
        } else if b == b'r' && is_raw_string_start(&cur, 1) {
            cur.bump();
            lex_raw_string(&mut cur)
        } else if b == b'b' && cur.peek(1) == b'r' && is_raw_string_start(&cur, 2) {
            cur.bump();
            cur.bump();
            lex_raw_string(&mut cur)
        } else if b == b'b' && cur.peek(1) == b'"' {
            cur.bump();
            lex_string(&mut cur)
        } else if b == b'b' && cur.peek(1) == b'\'' {
            cur.bump();
            lex_char(&mut cur)
        } else if b == b'"' {
            lex_string(&mut cur)
        } else if b == b'\'' {
            lex_quote(&mut cur)
        } else if is_ident_start(b) {
            lex_ident(&mut cur)
        } else if b.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
        toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }
    toks
}

fn lex_line_comment(cur: &mut Cursor) -> TokKind {
    while !cur.eof() && cur.peek(0) != b'\n' {
        cur.bump();
    }
    TokKind::Comment
}

fn lex_block_comment(cur: &mut Cursor) -> TokKind {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while !cur.eof() && depth > 0 {
        if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
            cur.bump();
            cur.bump();
            depth -= 1;
        } else {
            cur.bump();
        }
    }
    TokKind::Comment
}

/// True when the cursor, skipping `ahead` prefix bytes, sits on `#*"` —
/// the body of a raw-string opener.
fn is_raw_string_start(cur: &Cursor, mut ahead: usize) -> bool {
    while cur.peek(ahead) == b'#' {
        ahead += 1;
    }
    cur.peek(ahead) == b'"'
}

fn lex_raw_string(cur: &mut Cursor) -> TokKind {
    let mut hashes = 0usize;
    while cur.peek(0) == b'#' {
        cur.bump();
        hashes += 1;
    }
    cur.bump(); // opening quote
    'body: while !cur.eof() {
        if cur.bump() == b'"' {
            for ahead in 0..hashes {
                if cur.peek(ahead) != b'#' {
                    continue 'body;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
    TokKind::RawStr
}

fn lex_string(cur: &mut Cursor) -> TokKind {
    cur.bump(); // opening quote
    while !cur.eof() {
        match cur.bump() {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
    TokKind::Str
}

fn lex_char(cur: &mut Cursor) -> TokKind {
    cur.bump(); // opening quote
    while !cur.eof() {
        match cur.bump() {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
    TokKind::Char
}

/// A bare `'`: either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor) -> TokKind {
    // Escaped content ⇒ char literal ('\n', '\u{1F600}').
    if cur.peek(1) == b'\\' {
        return lex_char(cur);
    }
    // One codepoint then a closing quote ⇒ char literal ('x', '€').
    // Otherwise it is a lifetime ('a, 'static, 'de>).
    let mut ahead = 2;
    while cur.peek(ahead) >= 0x80 {
        ahead += 1; // skip UTF-8 continuation bytes of a multibyte char
    }
    if cur.peek(ahead) == b'\'' {
        return lex_char(cur);
    }
    cur.bump(); // the quote
    while is_ident_continue(cur.peek(0)) {
        cur.bump();
    }
    TokKind::Lifetime
}

fn lex_ident(cur: &mut Cursor) -> TokKind {
    while is_ident_continue(cur.peek(0)) {
        cur.bump();
    }
    TokKind::Ident
}

fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    // Radix prefixes never contain '.', so consume and finish.
    if cur.peek(0) == b'0' && matches!(cur.peek(1), b'x' | b'o' | b'b') {
        cur.bump();
        cur.bump();
        while cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_' {
            cur.bump();
        }
        return TokKind::Int;
    }
    while cur.peek(0).is_ascii_digit() || cur.peek(0) == b'_' {
        cur.bump();
    }
    // A '.' continues the number only when NOT followed by another '.'
    // (range `0..n`) or an identifier (method call / tuple-ish access).
    if cur.peek(0) == b'.' && cur.peek(1) != b'.' && !is_ident_start(cur.peek(1)) {
        float = true;
        cur.bump();
        while cur.peek(0).is_ascii_digit() || cur.peek(0) == b'_' {
            cur.bump();
        }
    }
    if matches!(cur.peek(0), b'e' | b'E')
        && (cur.peek(1).is_ascii_digit()
            || (matches!(cur.peek(1), b'+' | b'-') && cur.peek(2).is_ascii_digit()))
    {
        float = true;
        cur.bump();
        if matches!(cur.peek(0), b'+' | b'-') {
            cur.bump();
        }
        while cur.peek(0).is_ascii_digit() || cur.peek(0) == b'_' {
            cur.bump();
        }
    }
    // Type suffix (1u64, 2.5f32, 1f64).
    if is_ident_start(cur.peek(0)) {
        let mut suffix = Vec::new();
        while is_ident_continue(cur.peek(0)) {
            suffix.push(cur.bump());
        }
        if matches!(suffix.as_slice(), b"f32" | b"f64") {
            float = true;
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

fn lex_punct(cur: &mut Cursor) -> TokKind {
    for op in OPERATORS {
        if cur.src[cur.pos..].starts_with(op.as_bytes()) {
            for _ in 0..op.len() {
                cur.bump();
            }
            return TokKind::Punct;
        }
    }
    cur.bump();
    TokKind::Punct
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_operators() {
        let toks = kinds("let x = a == 1.5e3 && b != 0x_ff;");
        assert!(toks.contains(&(TokKind::Float, "1.5e3".into())));
        assert!(toks.contains(&(TokKind::Int, "0x_ff".into())));
        assert!(toks.contains(&(TokKind::Punct, "==".into())));
        assert!(toks.contains(&(TokKind::Punct, "!=".into())));
        assert!(toks.contains(&(TokKind::Punct, "&&".into())));
    }

    #[test]
    fn ranges_do_not_create_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.contains(&(TokKind::Int, "0".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Int, "10".into())));
    }

    #[test]
    fn float_suffixes_and_trailing_dot() {
        assert_eq!(kinds("1f32")[0].0, TokKind::Float);
        assert_eq!(kinds("2.")[0].0, TokKind::Float);
        assert_eq!(kinds("3u64")[0].0, TokKind::Int);
    }

    #[test]
    fn strings_hide_their_contents_from_token_stream() {
        // An `unwrap()` inside a string must lex as ONE string token, so
        // the panic pass can never trip on it.
        let toks = lex(r#"let s = "x.unwrap() and panic!";"#);
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].str_value(), Some("x.unwrap() and panic!"));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = "let s = r#\"say \"hi\" .unwrap()\"#; done";
        let toks = lex(src);
        let raw: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::RawStr).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].str_value(), Some("say \"hi\" .unwrap()"));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r##"let a = b"bytes"; let b = br#"raw"#;"##);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "byte string"
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::RawStr).count(),
            1,
            "raw byte string"
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("a /* outer /* inner */ still comment */ b");
        let comments: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("inner"));
        assert!(toks.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let b = b'q'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = lex(r"let q = '\''; let n = '\n'; after");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn comments_capture_their_text() {
        let toks = lex("x // lint:allow(panic) reason here\ny");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::Comment)
            .map(|t| t.text.clone());
        assert_eq!(c.as_deref(), Some("// lint:allow(panic) reason here"));
    }
}
