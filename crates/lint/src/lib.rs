//! # lint — the `headlint` static-analysis engine
//!
//! A zero-dependency workspace linter purpose-built for this repo's
//! reproduction invariants. Clippy checks general Rust hygiene; `headlint`
//! checks the things the paper's tables depend on and clippy cannot see:
//!
//! * **determinism** — no wall-clock or OS-entropy reads outside
//!   `crates/telemetry` and bench binaries (`wallclock`), no hash
//!   collections in simulator/decision/head state (`hash-collections`);
//!   "same seed ⇒ byte-identical trace" is the invariant behind Table V
//!   and the fault-injection subsystem.
//! * **panic-safety** — non-test code must surface errors (`panic`,
//!   advisory `index-panic`); the robustness harness can only recover
//!   from `Terminal::Fault` if the stack doesn't abort first.
//! * **float-safety** — no `==`/`!=` against float literals (`float-eq`),
//!   no silently lossy casts in the numerical crates (`float-cast`).
//! * **telemetry-key integrity** — every key literal resolves to the
//!   central `telemetry::keys` registry and every registered key has a
//!   call site (`telemetry-keys`).
//! * **config drift** — every crate's `lib.rs` carries the agreed
//!   panic-audit header (`lint-header`).
//!
//! On top of the per-file passes sits a workspace-level semantic layer:
//! [`items`] extracts `fn`/`impl` items and call references per file,
//! [`callgraph`] links them into an over-approximate cross-crate call
//! graph (narrowed by impl types and Cargo.toml dependency scoping), and
//! [`taint`] runs three graph-reachability rule families on it —
//! `determinism-taint` (nondeterminism sources must not reach the
//! checksum-gated paths), `serve-reachability` (panic sites must not be
//! reachable from the serving daemon's request path), and
//! `telemetry-liveness` (registered keys must be reachable from some
//! live root). Per-file analysis runs in parallel through `par::Pool`
//! and behind a content-hash incremental cache ([`cache`]), with output
//! byte-identical at any thread count, cold or warm. [`sarif`] renders
//! findings as SARIF 2.1.0 / GitHub annotations for CI.
//!
//! Findings are suppressed line-by-line with `// lint:allow(rule) reason`;
//! the reason is mandatory (`allow-no-reason`) and stale directives are
//! flagged (`unused-allow`).
//!
//! The cargo registry is unreachable in the build container, so there is
//! no `syn`/`proc-macro2`: [`lexer`] is a hand-rolled Rust tokenizer and
//! the passes work on token patterns. The only dependencies are the
//! workspace's own `telemetry` (JSON, counters) and `par` (the
//! deterministic pool the engine dogfoods).

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod callgraph;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod passes;
pub mod registry;
pub mod sarif;
pub mod source;
pub mod taint;

pub use engine::{
    analyse_source, lint_facts, lint_files, run, workspace_paths, FileFacts, Options, Report,
};
pub use passes::{rule, Context, Diagnostic, Rule, Severity, RULES};
pub use registry::KeyRegistry;
pub use sarif::{github_annotations, to_sarif};
pub use source::{Allow, SourceFile};
