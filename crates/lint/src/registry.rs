//! Parser for the `telemetry::keys` registry.
//!
//! The telemetry-key pass needs the set of registered key *values* and the
//! constant *names* that carry them. Rather than depend on the telemetry
//! crate's compiled consts (which would miss line numbers for
//! diagnostics), the registry is read straight from
//! `crates/telemetry/src/keys.rs` with the same lexer the passes use,
//! matching the `pub const NAME: &str = "value";` item shape.

use std::collections::BTreeSet;

use crate::lexer::{lex, TokKind};

/// One registered key constant.
#[derive(Clone, Debug)]
pub struct KeyConst {
    /// Constant identifier (`SPAN_SIM_STEP`).
    pub name: String,
    /// Key string value (`"sim.step"`).
    pub value: String,
    /// 1-based line of the declaration in keys.rs.
    pub line: u32,
}

/// The parsed registry.
#[derive(Debug, Default)]
pub struct KeyRegistry {
    consts: Vec<KeyConst>,
    values: BTreeSet<String>,
}

impl KeyRegistry {
    /// Parses `pub const NAME: &str = "value";` items out of keys.rs
    /// source text. Anything else (the `ALL` slice, doc comments, tests)
    /// is ignored.
    pub fn parse(src: &str) -> KeyRegistry {
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let mut consts = Vec::new();
        let mut i = 0;
        while i + 7 < toks.len() {
            let shape = toks[i].is_ident("const")
                && toks[i + 1].kind == TokKind::Ident
                && toks[i + 2].is_punct(":")
                && toks[i + 3].is_punct("&")
                && toks[i + 4].is_ident("str")
                && toks[i + 5].is_punct("=")
                && toks[i + 6].kind == TokKind::Str
                && toks[i + 7].is_punct(";");
            if shape {
                if let Some(value) = toks[i + 6].str_value() {
                    consts.push(KeyConst {
                        name: toks[i + 1].text.clone(),
                        value: value.to_string(),
                        line: toks[i].line,
                    });
                }
                i += 8;
            } else {
                i += 1;
            }
        }
        let values = consts.iter().map(|k| k.value.clone()).collect();
        KeyRegistry { consts, values }
    }

    /// True when no constants were parsed (keys.rs missing or empty).
    pub fn is_empty(&self) -> bool {
        self.consts.is_empty()
    }

    /// All registered constants.
    pub fn consts(&self) -> &[KeyConst] {
        &self.consts
    }

    /// True when `value` is a registered key string.
    pub fn contains_value(&self, value: &str) -> bool {
        self.values.contains(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_const_items_and_ignores_the_all_slice() {
        let src = r#"
//! Docs.
pub const SPAN_A: &str = "a.one";
/// Doc comment.
pub const B: &str = "b.two";
pub const ALL: &[&str] = &[SPAN_A, B];
"#;
        let reg = KeyRegistry::parse(src);
        assert_eq!(reg.consts().len(), 2);
        assert!(reg.contains_value("a.one"));
        assert!(reg.contains_value("b.two"));
        assert!(!reg.contains_value("ALL"));
        assert_eq!(reg.consts()[0].name, "SPAN_A");
        assert_eq!(reg.consts()[0].line, 3);
    }

    #[test]
    fn empty_source_yields_empty_registry() {
        assert!(KeyRegistry::parse("").is_empty());
    }
}
