//! `headlint` — the workspace static-analysis driver.
//!
//! ```text
//! headlint [--root DIR] [--json] [--json-out FILE] [--telemetry DIR]
//!          [--deny RULE]... [--list-rules] [PATH...]
//! ```
//!
//! With no PATHs, walks `crates/*/src` and `crates/*/tests` under the
//! root (default: current directory). Exit codes: 0 clean, 1 violations,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{run, Options, RULES};

struct Cli {
    opts: Options,
    json_stdout: bool,
    json_out: Option<PathBuf>,
    list_rules: bool,
}

fn usage() -> String {
    "usage: headlint [--root DIR] [--json] [--json-out FILE] [--telemetry DIR] \
     [--deny RULE]... [--list-rules] [PATH...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: Options {
            root: PathBuf::from("."),
            paths: Vec::new(),
            deny: Vec::new(),
        },
        json_stdout: false,
        json_out: None,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--root needs a value\n{}", usage()))?;
                cli.opts.root = PathBuf::from(v);
            }
            "--json" => cli.json_stdout = true,
            "--json-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--json-out needs a value\n{}", usage()))?;
                cli.json_out = Some(PathBuf::from(v));
            }
            "--telemetry" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--telemetry needs a value\n{}", usage()))?;
                cli.json_out = Some(PathBuf::from(v).join("lint_report.json"));
            }
            "--deny" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--deny needs a value\n{}", usage()))?;
                if lint::rule(v).is_none() {
                    return Err(format!("unknown rule `{v}`; see --list-rules"));
                }
                cli.opts.deny.push(v.clone());
            }
            "--list-rules" => cli.list_rules = true,
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with('-') => {
                return Err(format!("unknown flag `{a}`\n{}", usage()));
            }
            _ => cli.opts.paths.push(PathBuf::from(a)),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        for r in RULES {
            println!("{:<16} {:<8} {}", r.name, r.severity.label(), r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let report = match run(&cli.opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("headlint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = cli.opts.root.to_string_lossy().replace('\\', "/");
    if let Some(path) = &cli.json_out {
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("headlint: create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let text = format!("{}\n", report.to_json(&root));
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("headlint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if cli.json_stdout {
        println!("{}", report.to_json(&root));
    } else {
        print!("{}", report.render_human());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
