//! `headlint` — the workspace static-analysis driver.
//!
//! ```text
//! headlint [--root DIR] [--json] [--json-out FILE] [--telemetry DIR]
//!          [--threads N] [--cache FILE] [--sarif-out FILE] [--github]
//!          [--deny RULE]... [--list-rules] [PATH...]
//! ```
//!
//! With no PATHs, walks `crates/*/{src,tests,benches}`, `examples/` and
//! the root `tests/` under the root (default: current directory).
//! `--threads N` fans per-file analysis across a `par::Pool` (output is
//! byte-identical at any thread count); `--cache FILE` keeps a
//! content-hash incremental cache between runs. Exit codes: 0 clean,
//! 1 violations, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{github_annotations, run, to_sarif, Options, RULES};

struct Cli {
    opts: Options,
    json_stdout: bool,
    json_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    github: bool,
    list_rules: bool,
}

fn usage() -> String {
    "usage: headlint [--root DIR] [--json] [--json-out FILE] [--telemetry DIR] \
     [--threads N] [--cache FILE] [--sarif-out FILE] [--github] \
     [--deny RULE]... [--list-rules] [PATH...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: Options {
            root: PathBuf::from("."),
            paths: Vec::new(),
            deny: Vec::new(),
            threads: 1,
            cache: None,
        },
        json_stdout: false,
        json_out: None,
        sarif_out: None,
        github: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--root needs a value\n{}", usage()))?;
                cli.opts.root = PathBuf::from(v);
            }
            "--json" => cli.json_stdout = true,
            "--json-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--json-out needs a value\n{}", usage()))?;
                cli.json_out = Some(PathBuf::from(v));
            }
            "--telemetry" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--telemetry needs a value\n{}", usage()))?;
                cli.json_out = Some(PathBuf::from(v).join("lint_report.json"));
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--threads needs a value\n{}", usage()))?;
                cli.opts.threads = v
                    .parse::<usize>()
                    .map_err(|_| format!("--threads needs an integer, got `{v}`"))?;
            }
            "--cache" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--cache needs a value\n{}", usage()))?;
                cli.opts.cache = Some(PathBuf::from(v));
            }
            "--sarif-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--sarif-out needs a value\n{}", usage()))?;
                cli.sarif_out = Some(PathBuf::from(v));
            }
            "--github" => cli.github = true,
            "--deny" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--deny needs a value\n{}", usage()))?;
                if lint::rule(v).is_none() {
                    return Err(format!("unknown rule `{v}`; see --list-rules"));
                }
                cli.opts.deny.push(v.clone());
            }
            "--list-rules" => cli.list_rules = true,
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with('-') => {
                return Err(format!("unknown flag `{a}`\n{}", usage()));
            }
            _ => cli.opts.paths.push(PathBuf::from(a)),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if cli.list_rules {
        for r in RULES {
            println!("{:<16} {:<8} {}", r.name, r.severity.label(), r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let report = match run(&cli.opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("headlint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = cli.opts.root.to_string_lossy().replace('\\', "/");
    if let Some(path) = &cli.json_out {
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("headlint: create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let text = format!("{}\n", report.to_json(&root));
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("headlint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &cli.sarif_out {
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("headlint: create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let text = format!("{}\n", to_sarif(&report));
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("headlint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if cli.github {
        print!("{}", github_annotations(&report));
    }
    if cli.json_stdout {
        println!("{}", report.to_json(&root));
    } else {
        print!("{}", report.render_human());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
