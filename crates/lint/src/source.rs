//! Per-file analysis context shared by every pass.
//!
//! A [`SourceFile`] owns the token stream of one `.rs` file plus the two
//! derived structures the passes need constantly: a *test mask* (which
//! tokens live inside `#[cfg(test)]` / `#[test]` items, where panic- and
//! determinism-rules do not apply) and the parsed `// lint:allow(...)`
//! directives (the reason-bearing escape hatch).

use crate::lexer::{lex, Tok, TokKind};

/// A parsed `// lint:allow(rule, ...) reason` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule names listed inside the parentheses.
    pub rules: Vec<String>,
    /// Free-text justification after the closing parenthesis. The
    /// `allow-no-reason` rule fires when this is empty.
    pub reason: String,
    /// Line the directive comment is on.
    pub directive_line: u32,
    /// Line of code the directive suppresses: its own line when it trails
    /// code, otherwise the next line holding any code token.
    pub applies_line: u32,
    /// Set by the engine when the directive suppressed a diagnostic.
    pub used: bool,
}

/// One lexed and pre-analysed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate directory name under `crates/` (empty outside `crates/`).
    pub crate_name: String,
    /// True for files under a `tests/` or `benches/` directory
    /// (integration tests and criterion benches are fully test-masked).
    pub in_tests_dir: bool,
    /// Comment-free token stream.
    pub toks: Vec<Tok>,
    /// Comment tokens, in source order.
    pub comments: Vec<Tok>,
    /// `test_mask[i]` — `toks[i]` sits inside test-only code.
    pub test_mask: Vec<bool>,
    /// Parsed allow directives.
    pub allows: Vec<Allow>,
}

/// Keywords that can directly precede a `[` opening an array literal (so a
/// `[` after one of these is NOT an indexing expression).
const PRE_BRACKET_KEYWORDS: [&str; 10] = [
    "return", "else", "in", "break", "mut", "ref", "as", "move", "let", "match",
];

impl SourceFile {
    /// Lexes `src` and computes the test mask and allow directives.
    pub fn analyse(path: String, crate_name: String, src: &str) -> SourceFile {
        let in_tests_dir =
            path.contains("/tests/") || path.starts_with("tests/") || path.contains("/benches/");
        let all = lex(src);
        let mut toks = Vec::new();
        let mut comments = Vec::new();
        for t in all {
            if t.kind == TokKind::Comment {
                comments.push(t);
            } else {
                toks.push(t);
            }
        }
        let test_mask = if in_tests_dir {
            vec![true; toks.len()]
        } else {
            test_mask(&toks)
        };
        let allows = parse_allows(&comments, &toks);
        SourceFile {
            path,
            crate_name,
            in_tests_dir,
            toks,
            comments,
            test_mask,
            allows,
        }
    }

    /// True when `toks[i]` is inside test-only code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// True when a `[` at token index `i` reads as slice/map indexing:
    /// it must directly follow a value expression (identifier, closing
    /// bracket, or literal) rather than a keyword, operator or attribute.
    pub fn bracket_is_index(&self, i: usize) -> bool {
        if i == 0 {
            return false;
        }
        let prev = &self.toks[i - 1];
        match prev.kind {
            TokKind::Ident => !PRE_BRACKET_KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        }
    }
}

/// Marks tokens belonging to `#[cfg(test)]` / `#[test]` items.
///
/// Strategy: find an outer attribute spelling exactly `#[test]` or
/// `#[cfg(test)]`, skip any further attributes, then extend the region to
/// the end of the annotated item — the matching `}` of the first
/// brace-block at bracket depth zero, or a terminating `;` for bodiless
/// items. Inner attributes (`#![...]`) and `cfg(not(test))` never match.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && matches!(toks.get(i + 1), Some(t) if t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(close) = match_bracket(toks, i + 1, "[", "]") else {
            break;
        };
        let inner = &toks[i + 2..close];
        let is_test_attr = matches!(inner, [t] if t.is_ident("test"))
            || matches!(
                inner,
                [c, o, t, p] if c.is_ident("cfg") && o.is_punct("(") && t.is_ident("test") && p.is_punct(")")
            );
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further outer attributes between this one and the item.
        let mut k = close + 1;
        while k < toks.len()
            && toks[k].is_punct("#")
            && matches!(toks.get(k + 1), Some(t) if t.is_punct("["))
        {
            match match_bracket(toks, k + 1, "[", "]") {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // Find the item extent: first `{` at paren/bracket depth 0 opens
        // the body (match to its `}`); a `;` at depth 0 first ends it.
        let mut depth = 0i32;
        let mut end = toks.len().saturating_sub(1);
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        end = k;
                        break;
                    }
                    "{" if depth == 0 => {
                        end = match_bracket(toks, k, "{", "}").unwrap_or(toks.len() - 1);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Index of the bracket matching the opener at `open_idx`, tracking only
/// the given pair.
fn match_bracket(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Extracts `// lint:allow(rule, ...) reason` directives from comments and
/// resolves the line each one applies to.
fn parse_allows(comments: &[Tok], toks: &[Tok]) -> Vec<Allow> {
    let mut code_lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
    code_lines.sort_unstable();
    code_lines.dedup();
    let mut allows = Vec::new();
    for c in comments {
        if !c.text.starts_with("//") {
            continue;
        }
        let body = c.text.trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = rest[close + 1..].trim().to_string();
        // Trailing directive: code on the same line precedes the comment.
        // Standalone directive: applies to the next line holding code.
        let applies_line = if code_lines.binary_search(&c.line).is_ok() {
            c.line
        } else {
            match code_lines.iter().find(|&&l| l > c.line) {
                Some(&l) => l,
                None => c.line,
            }
        };
        allows.push(Allow {
            rules,
            reason,
            directive_line: c.line,
            applies_line,
            used: false,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::analyse("crates/x/src/lib.rs".into(), "x".into(), src)
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let f = file(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\nfn after() {}\n",
        );
        let unwrap_idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(f.is_test(unwrap_idx));
        let prod_idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("prod"))
            .expect("prod");
        let after_idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("after"))
            .expect("after");
        assert!(!f.is_test(prod_idx));
        assert!(!f.is_test(after_idx), "mask must end at the module brace");
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let f = file("#[test]\nfn t() { x.unwrap(); }\nfn prod() { }\n");
        let unwrap_idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(f.is_test(unwrap_idx));
        let prod_idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("prod"))
            .expect("prod");
        assert!(!f.is_test(prod_idx));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let f = file("#[cfg(not(test))]\nfn prod() { risky(); }\n");
        let idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("risky"))
            .expect("risky");
        assert!(!f.is_test(idx));
    }

    #[test]
    fn inner_cfg_attr_is_not_a_test_marker() {
        let f = file("#![cfg_attr(test, allow(clippy::unwrap_used))]\nfn prod() { risky(); }\n");
        let idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("risky"))
            .expect("risky");
        assert!(!f.is_test(idx));
    }

    #[test]
    fn files_under_tests_dir_are_fully_masked() {
        let f = SourceFile::analyse(
            "crates/x/tests/it.rs".into(),
            "x".into(),
            "fn anything() { v.unwrap(); }",
        );
        assert!(f.test_mask.iter().all(|&m| m));
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let f = file("fn f() {\n    x.expect(\"boom\"); // lint:allow(panic) checked above\n}\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].applies_line, 2);
        assert_eq!(f.allows[0].rules, vec!["panic".to_string()]);
        assert_eq!(f.allows[0].reason, "checked above");
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let f = file(
            "fn f() {\n    // lint:allow(panic, float-eq) both intentional\n\n    x.expect(\"boom\");\n}\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].applies_line, 4);
        assert_eq!(
            f.allows[0].rules,
            vec!["panic".to_string(), "float-eq".to_string()]
        );
    }

    #[test]
    fn allow_without_reason_is_recorded_empty() {
        let f = file("fn f() {\n    // lint:allow(panic)\n    x.expect(\"boom\");\n}\n");
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].reason.is_empty());
    }

    #[test]
    fn bracket_classification() {
        let f = file("fn f() { let a = v[i]; let b = [0; 4]; g()[0]; &[1, 2]; }");
        let idx: Vec<bool> = f
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_punct("["))
            .map(|(i, _)| f.bracket_is_index(i))
            .collect();
        assert_eq!(idx, vec![true, false, true, false]);
    }
}
