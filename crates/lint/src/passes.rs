//! The lint passes and the diagnostics they emit.
//!
//! Each pass is a pure function from a [`SourceFile`] (plus shared
//! [`Context`]) to diagnostics; the engine handles allow-directive
//! suppression, severity promotion and reporting. Passes work on the
//! comment-free token stream, so nothing inside a string literal or
//! comment can ever trip a rule. DESIGN.md §"Static analysis" maps each
//! rule to the reproduction invariant it protects.

use crate::lexer::TokKind;
use crate::registry::KeyRegistry;
use crate::source::SourceFile;

/// Diagnostic severity. Only `Error` affects the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A violation; fails the run.
    Error,
    /// Advisory; reported but does not fail the run.
    Warn,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
        }
    }
}

/// One finding at a source location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule name (see [`RULES`]).
    pub rule: &'static str,
    /// Severity after any `--deny` promotion.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` and docs.
pub struct Rule {
    /// Stable rule name, also the `lint:allow(...)` key.
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule headlint knows about.
pub const RULES: &[Rule] = &[
    Rule {
        name: "wallclock",
        severity: Severity::Error,
        summary: "wall-clock reads (Instant::now / SystemTime::now / thread_rng) outside \
                  crates/telemetry and bench binaries break seed-determinism; use \
                  telemetry::Stopwatch for reporting-only timing",
    },
    Rule {
        name: "thread-spawn",
        severity: Severity::Error,
        summary: "raw std::thread::spawn / thread::scope outside crates/par bypasses the \
                  deterministic worker pool's ordered reduction; go through par::Pool",
    },
    Rule {
        name: "hash-collections",
        severity: Severity::Error,
        summary: "HashMap/HashSet in traffic-sim, decision or head have nondeterministic \
                  iteration order; use BTreeMap/BTreeSet/Vec",
    },
    Rule {
        name: "panic",
        severity: Severity::Error,
        summary: "unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in non-test \
                  code; surface an error instead or annotate with a reason",
    },
    Rule {
        name: "index-panic",
        severity: Severity::Warn,
        summary: "direct slice/map indexing in non-test code can panic; prefer get()",
    },
    Rule {
        name: "float-eq",
        severity: Severity::Error,
        summary: "==/!= against a float literal; use an epsilon or total_cmp, or annotate \
                  intentional exact-bit checks",
    },
    Rule {
        name: "float-cast",
        severity: Severity::Error,
        summary: "lossy `as` cast of a float-valued expression in nn/perception/decision; \
                  round explicitly or justify with an allow",
    },
    Rule {
        name: "graph-churn",
        severity: Severity::Error,
        summary: "Graph::new() outside a constructor rebuilds the tape's buffer arena \
                  every call; hold a persistent nn::Graph and reset() it, or annotate \
                  why no tape can be borrowed",
    },
    Rule {
        name: "serve-no-graph-new",
        severity: Severity::Error,
        summary: "Graph::new() anywhere in crates/serve puts cold-arena tape \
                  construction on the serving request path and can blow a request's \
                  deadline budget; the decision agent's persistent tapes are the \
                  only sanctioned graphs in the daemon",
    },
    Rule {
        name: "telemetry-keys",
        severity: Severity::Error,
        summary: "string literal passed to a telemetry entry point that is not a \
                  registered telemetry::keys constant, or a registered key with no \
                  call site",
    },
    Rule {
        name: "recorder-keys",
        severity: Severity::Error,
        summary: "string literal passed to a flight-recorder entry point \
                  (flight_record / flight_dump) that is not a registered \
                  telemetry::keys constant",
    },
    Rule {
        name: "lint-header",
        severity: Severity::Error,
        summary: "crate lib.rs is missing the agreed panic-audit header \
                  (#![deny(clippy::unwrap_used)] + test cfg_attr allow)",
    },
    Rule {
        name: "determinism-taint",
        severity: Severity::Error,
        summary: "a nondeterminism source (wall clock, OS entropy, env read, hash-ordered \
                  collection, thread identity) is reachable, through the workspace call \
                  graph, from a checksum-gated path (par, nn matmul/backward, \
                  head::evaluate_agent*, traffic-sim step); the parallel/serial \
                  byte-identity contract cannot survive it",
    },
    Rule {
        name: "serve-reachability",
        severity: Severity::Error,
        summary: "a panic site (unwrap/expect/panic-family macro) is reachable from \
                  crates/serve request handling — the crash-only daemon must degrade, \
                  never die; direct-indexing sites aggregate to one warning per \
                  reachable fn, suppressible at its signature line",
    },
    Rule {
        name: "telemetry-liveness",
        severity: Severity::Error,
        summary: "a telemetry::keys constant is only referenced from code unreachable \
                  from every live root (tests, binaries, examples); the metric can \
                  never be emitted in a real run",
    },
    Rule {
        name: "allow-no-reason",
        severity: Severity::Error,
        summary: "lint:allow directive without a justification after the parentheses",
    },
    Rule {
        name: "unused-allow",
        severity: Severity::Warn,
        summary: "lint:allow directive that suppressed nothing; remove it",
    },
];

/// Looks up a rule by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Workspace-level inputs shared by all passes.
pub struct Context {
    /// Parsed `telemetry::keys` registry (empty when keys.rs is absent).
    pub keys: KeyRegistry,
    /// Transitive crate-dependency map for call-graph scoping. Empty
    /// (unit tests, fixture workspaces without manifests) means every
    /// crate is in scope — the over-approximate default.
    pub deps: crate::callgraph::DepMap,
}

impl Context {
    /// A context with the given key registry and no dependency scoping.
    pub fn new(keys: KeyRegistry) -> Context {
        Context {
            keys,
            deps: crate::callgraph::DepMap::new(),
        }
    }
}

fn diag(rule_name: &'static str, f: &SourceFile, tok_idx: usize, message: String) -> Diagnostic {
    let t = &f.toks[tok_idx];
    let severity = match rule(rule_name) {
        Some(r) => r.severity,
        None => Severity::Error,
    };
    Diagnostic {
        rule: rule_name,
        severity,
        file: f.path.clone(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// Runs every per-file pass.
pub fn run_file_passes(f: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
    pass_wallclock(f, out);
    pass_thread_spawn(f, out);
    pass_hash_collections(f, out);
    pass_panic(f, out);
    pass_index(f, out);
    pass_float_eq(f, out);
    pass_float_cast(f, out);
    pass_graph_churn(f, out);
    pass_serve_no_graph_new(f, out);
    pass_telemetry_keys(f, ctx, out);
    pass_recorder_keys(f, ctx, out);
    pass_lint_header(f, out);
}

/// Crates whose state types must iterate deterministically.
const ORDERED_CRATES: [&str; 3] = ["traffic-sim", "decision", "head"];

/// Crates under the float-cast rule (numerical kernels and training math).
const FLOAT_CRATES: [&str; 3] = ["nn", "perception", "decision"];

/// Determinism: no wall-clock or entropy sources outside telemetry and
/// binary-like code (CLI tools, examples). Reporting-only timing goes
/// through `telemetry::Stopwatch`.
fn pass_wallclock(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.crate_name == "telemetry" || crate::callgraph::is_bin_like(&f.path) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let now_call = (t.text == "Instant" || t.text == "SystemTime")
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
            && matches!(toks.get(i + 2), Some(n) if n.is_ident("now"));
        if now_call {
            out.push(diag(
                "wallclock",
                f,
                i,
                format!(
                    "`{}::now()` breaks seed-determinism; time reporting must go \
                     through telemetry::Stopwatch",
                    t.text
                ),
            ));
        }
        if t.text == "thread_rng" || t.text == "from_entropy" {
            out.push(diag(
                "wallclock",
                f,
                i,
                format!(
                    "`{}` draws OS entropy; all randomness must come from the run's \
                     seeded ChaCha streams",
                    t.text
                ),
            ));
        }
    }
}

/// Determinism: all parallelism goes through `par::Pool`, whose ordered
/// reduction keeps parallel output byte-identical to serial. Raw thread
/// primitives anywhere else reintroduce scheduling-dependent merge order,
/// so they are confined to the pool's own implementation.
fn pass_thread_spawn(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.crate_name == "par" {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if !t.is_ident("thread") {
            continue;
        }
        let path_call = matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
            && matches!(toks.get(i + 2), Some(n) if n.is_ident("spawn") || n.is_ident("scope"));
        if path_call {
            let what = &toks[i + 2].text;
            out.push(diag(
                "thread-spawn",
                f,
                i,
                format!(
                    "`thread::{what}` outside crates/par bypasses the deterministic \
                     worker pool; submit the work through par::Pool::try_map instead"
                ),
            ));
        }
    }
}

/// Determinism: hash collections iterate in randomised order, which breaks
/// the byte-identical fault-trace guarantee in sim/decision/head state.
fn pass_hash_collections(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !ORDERED_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    for i in 0..f.toks.len() {
        if f.is_test(i) {
            continue;
        }
        let t = &f.toks[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(diag(
                "hash-collections",
                f,
                i,
                format!(
                    "`{}` iteration order is nondeterministic and breaks byte-identical \
                     traces; use `{ordered}` or a Vec",
                    t.text
                ),
            ));
        }
    }
}

/// Panic-safety: non-test library code must surface errors, not abort.
fn pass_panic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let method_call = |name: &str| {
            t.text == name
                && i > 0
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
        };
        if method_call("unwrap") || method_call("expect") {
            out.push(diag(
                "panic",
                f,
                i,
                format!(
                    "`.{}()` panics on the error path; propagate the error or annotate \
                     why it cannot fail",
                    t.text
                ),
            ));
            continue;
        }
        let is_macro = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"));
        if is_macro {
            out.push(diag(
                "panic",
                f,
                i,
                format!("`{}!` aborts the process in non-test code", t.text),
            ));
        }
    }
}

/// Panic-safety (advisory): direct indexing can panic; `get` is explicit.
fn pass_index(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..f.toks.len() {
        if f.is_test(i) {
            continue;
        }
        if f.toks[i].is_punct("[") && f.bracket_is_index(i) {
            out.push(diag(
                "index-panic",
                f,
                i,
                "direct indexing panics when out of bounds; consider get()".to_string(),
            ));
        }
    }
}

/// Float-safety: `==`/`!=` adjacent to a float literal. Applies to test
/// code too — intentional exact-bit determinism checks carry an allow.
fn pass_float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let next_float = match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Float => true,
            Some(n) if n.is_punct("-") => {
                matches!(toks.get(i + 2), Some(m) if m.kind == TokKind::Float)
            }
            _ => false,
        };
        if prev_float || next_float {
            out.push(diag(
                "float-eq",
                f,
                i,
                format!(
                    "`{}` against a float literal; rounding error makes exact \
                     comparison fragile — use an epsilon or total_cmp",
                    t.text
                ),
            ));
        }
    }
}

/// Integer target types for which a float-valued `as` cast is lossy.
const LOSSY_TARGETS: [&str; 13] = [
    "f32", "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Methods whose receiver must be a float, marking the cast source as
/// float-valued.
const FLOAT_METHODS: [&str; 11] = [
    "sqrt", "powf", "powi", "round", "floor", "ceil", "exp", "ln", "log2", "log10", "abs_sub",
];

/// Float-safety: lossy `as` casts of float-valued expressions in the
/// numerical crates. Without type inference the pass is heuristic: it
/// walks the postfix expression feeding the cast and fires when that
/// expression contains a float literal, a division, or a float-only
/// method call.
fn pass_float_cast(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !FLOAT_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test(i) {
            continue;
        }
        if !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if !(target.kind == TokKind::Ident && LOSSY_TARGETS.contains(&target.text.as_str())) {
            continue;
        }
        if source_expr_is_floaty(f, i) {
            out.push(diag(
                "float-cast",
                f,
                i,
                format!(
                    "float-valued expression cast with `as {}` truncates silently; \
                     round explicitly or annotate the intended loss",
                    target.text
                ),
            ));
        }
    }
}

/// Walks the postfix chain ending just before the `as` at `as_idx` and
/// reports whether it contains a float marker.
fn source_expr_is_floaty(f: &SourceFile, as_idx: usize) -> bool {
    let toks = &f.toks;
    let mut j = as_idx;
    let mut floaty = false;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Punct if t.text == ")" || t.text == "]" => {
                // Scan back to the matching opener, inspecting everything
                // inside the group.
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    let u = &toks[j];
                    if u.is_punct(close) {
                        depth += 1;
                    } else if u.is_punct(open) {
                        depth -= 1;
                    } else if u.kind == TokKind::Float
                        || u.is_punct("/")
                        || (u.kind == TokKind::Ident && FLOAT_METHODS.contains(&u.text.as_str()))
                    {
                        floaty = true;
                    }
                }
            }
            TokKind::Float => floaty = true,
            TokKind::Int | TokKind::Ident => {
                if FLOAT_METHODS.contains(&t.text.as_str()) {
                    floaty = true;
                }
            }
            TokKind::Punct if t.text == "." || t.text == "::" => {}
            _ => break,
        }
        // Continue only while the previous token keeps the postfix chain
        // going (`.`, `::`, or another primary).
        if j > 0 {
            let p = &toks[j - 1];
            let chains = p.is_punct(".")
                || p.is_punct("::")
                || p.kind == TokKind::Ident
                || p.kind == TokKind::Float
                || p.kind == TokKind::Int
                || p.is_punct(")")
                || p.is_punct("]");
            if !chains {
                break;
            }
        }
    }
    floaty
}

/// Memory-model: steady-state code must reuse a persistent `nn::Graph`
/// tape via `Graph::reset()` instead of constructing a fresh one per call
/// — a fresh graph starts with a cold `BufferPool`, so every intermediate
/// buffer is re-allocated and the arena's steady-state reuse guarantee
/// evaporates. Constructors (`fn new`) are the sanctioned place to build
/// the persistent tapes; bench binaries measure the churn deliberately.
/// The enclosing-function check is a lexical heuristic (last `fn <name>`
/// seen before the call), which is exact for this workspace's flat item
/// layout.
fn pass_graph_churn(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if crate::callgraph::is_bin_like(&f.path) {
        return;
    }
    let toks = &f.toks;
    let mut enclosing_fn = String::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("fn") {
            if let Some(n) = toks.get(i + 1) {
                if n.kind == TokKind::Ident {
                    enclosing_fn = n.text.clone();
                }
            }
            continue;
        }
        if f.is_test(i) {
            continue;
        }
        let churn = t.is_ident("Graph")
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
            && matches!(toks.get(i + 2), Some(n) if n.is_ident("new"));
        if churn && enclosing_fn != "new" {
            out.push(diag(
                "graph-churn",
                f,
                i,
                "`Graph::new()` outside a constructor discards the tape's warm buffer \
                 arena; hold a persistent tape and `reset()` it per pass instead"
                    .to_string(),
            ));
        }
    }
}

/// Serving latency: nothing in `crates/serve` may construct an `nn::Graph`
/// — not even in a constructor, which `graph-churn` would sanction. The
/// daemon answers within per-request deadline budgets, and a fresh tape is
/// a cold-arena allocation storm; the decision agent's persistent tapes
/// (built when the agent is, inside `decision`) are the only graphs that
/// belong in the serving process.
fn pass_serve_no_graph_new(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.crate_name != "serve" {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test(i) {
            continue;
        }
        let t = &toks[i];
        let hit = t.is_ident("Graph")
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
            && matches!(toks.get(i + 2), Some(n) if n.is_ident("new"));
        if hit {
            out.push(diag(
                "serve-no-graph-new",
                f,
                i,
                "`Graph::new()` on the serve request path: the daemon must reuse the \
                 agent's persistent tapes, never build one while a deadline is running"
                    .to_string(),
            ));
        }
    }
}

/// Telemetry entry points whose first argument is a metric/event key.
const KEYED_FNS: [&str; 7] = [
    "counter_add",
    "counter_value",
    "gauge_set",
    "gauge_value",
    "histogram_record",
    "histogram_snapshot",
    "emit_event",
];

/// Telemetry-key integrity: any string literal handed to a telemetry entry
/// point (or `span!`) must be a value registered in `telemetry::keys`.
/// Non-literal arguments are the constants themselves and are checked at
/// their definition site. Test code may use ad-hoc keys.
fn pass_telemetry_keys(f: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
    if ctx.keys.is_empty() || f.path.ends_with("telemetry/src/keys.rs") {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let keyed_call = KEYED_FNS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        let span_macro = t.text == "span"
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
            && matches!(toks.get(i + 2), Some(n) if n.is_punct("("));
        if !(keyed_call || span_macro) {
            continue;
        }
        let mut a = if span_macro { i + 3 } else { i + 2 };
        // Skip leading `&` borrows on the argument.
        while matches!(toks.get(a), Some(n) if n.is_punct("&")) {
            a += 1;
        }
        let Some(arg) = toks.get(a) else { continue };
        let Some(value) = arg.str_value() else {
            continue;
        };
        if !ctx.keys.contains_value(value) {
            out.push(diag(
                "telemetry-keys",
                f,
                a,
                format!(
                    "telemetry key \"{value}\" is not registered in telemetry::keys; \
                     a typo here silently drops the metric — add a constant and \
                     reference it"
                ),
            ));
        } else {
            out.push(diag(
                "telemetry-keys",
                f,
                a,
                format!(
                    "telemetry key \"{value}\" is registered but passed as a literal; \
                     reference the telemetry::keys constant instead"
                ),
            ));
        }
    }
}

/// Flight-recorder entry points whose first argument is an event name or
/// dump reason.
const RECORDER_FNS: [&str; 2] = ["flight_record", "flight_dump"];

/// Flight-recorder integrity: event names and dump reasons handed to
/// `flight_record`/`flight_dump` must be registered `telemetry::keys`
/// constants, just like the metric entry points — a typo'd name makes a
/// post-mortem dump invisible to tooling that greps for registered keys.
/// Test code may use ad-hoc names.
fn pass_recorder_keys(f: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
    if ctx.keys.is_empty() || f.path.ends_with("telemetry/src/keys.rs") {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !RECORDER_FNS.contains(&t.text.as_str()) {
            continue;
        }
        let is_call = matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if !is_call {
            continue;
        }
        let mut a = i + 2;
        // Skip leading `&` borrows on the argument.
        while matches!(toks.get(a), Some(n) if n.is_punct("&")) {
            a += 1;
        }
        let Some(arg) = toks.get(a) else { continue };
        let Some(value) = arg.str_value() else {
            continue;
        };
        if !ctx.keys.contains_value(value) {
            out.push(diag(
                "recorder-keys",
                f,
                a,
                format!(
                    "flight-recorder key \"{value}\" is not registered in \
                     telemetry::keys; a typo here makes the post-mortem dump \
                     unsearchable — add a constant and reference it"
                ),
            ));
        } else {
            out.push(diag(
                "recorder-keys",
                f,
                a,
                format!(
                    "flight-recorder key \"{value}\" is registered but passed as a \
                     literal; reference the telemetry::keys constant instead"
                ),
            ));
        }
    }
}

/// Token spelling of the two mandatory inner attributes.
const HEADER_DENY: [&str; 10] = [
    "#",
    "!",
    "[",
    "deny",
    "(",
    "clippy",
    "::",
    "unwrap_used",
    ")",
    "]",
];
const HEADER_CFG: [&str; 15] = [
    "#",
    "!",
    "[",
    "cfg_attr",
    "(",
    "test",
    ",",
    "allow",
    "(",
    "clippy",
    "::",
    "unwrap_used",
    ")",
    ")",
    "]",
];

/// Lint-config drift: every crate's lib.rs must carry the agreed
/// panic-audit header so clippy enforcement cannot silently regress.
fn pass_lint_header(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let is_lib = f.path.starts_with("crates/") && f.path.ends_with("/src/lib.rs");
    if !is_lib {
        return;
    }
    let texts: Vec<&str> = f.toks.iter().map(|t| t.text.as_str()).collect();
    for (needle, what) in [
        (&HEADER_DENY[..], "#![deny(clippy::unwrap_used)]"),
        (
            &HEADER_CFG[..],
            "#![cfg_attr(test, allow(clippy::unwrap_used))]",
        ),
    ] {
        let found = texts
            .windows(needle.len())
            .any(|w| w.iter().zip(needle).all(|(a, b)| a == b));
        if !found {
            out.push(Diagnostic {
                rule: "lint-header",
                severity: Severity::Error,
                file: f.path.clone(),
                line: 1,
                col: 1,
                message: format!("lib.rs is missing the agreed header attribute `{what}`"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::KeyRegistry;

    fn lint_src(path: &str, crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::analyse(path.into(), crate_name.into(), src);
        let ctx = Context::new(KeyRegistry::parse(
            "pub const GOOD: &str = \"sim.good\";\npub const OTHER: &str = \"sim.other\";\n",
        ));
        let mut out = Vec::new();
        run_file_passes(&f, &ctx, &mut out);
        out
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn wallclock_flags_instant_now_but_not_stopwatch() {
        let d = lint_src(
            "crates/head/src/a.rs",
            "head",
            "fn f() { let t = Instant::now(); let s = Stopwatch::start(); }",
        );
        assert_eq!(rules_of(&d), vec!["wallclock"]);
    }

    #[test]
    fn wallclock_exempts_telemetry_and_bins() {
        assert!(lint_src(
            "crates/telemetry/src/clock.rs",
            "telemetry",
            "fn f() { Instant::now(); }",
        )
        .is_empty());
        assert!(lint_src(
            "crates/bench/src/bin/b.rs",
            "bench",
            "fn f() { Instant::now(); }",
        )
        .is_empty());
    }

    #[test]
    fn thread_spawn_confined_to_par() {
        let d = lint_src(
            "crates/head/src/a.rs",
            "head",
            "fn f() { std::thread::spawn(|| 0); }",
        );
        assert_eq!(rules_of(&d), vec!["thread-spawn"]);
        let d = lint_src(
            "crates/decision/src/a.rs",
            "decision",
            "fn f() { thread::scope(|s| {}); }",
        );
        assert_eq!(rules_of(&d), vec!["thread-spawn"]);
        assert!(lint_src(
            "crates/par/src/pool.rs",
            "par",
            "fn f() { thread::scope(|s| { s.spawn(|| 0); }); }",
        )
        .is_empty());
    }

    #[test]
    fn thread_spawn_skips_tests_and_non_thread_paths() {
        assert!(lint_src(
            "crates/head/src/a.rs",
            "head",
            "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| 0); } }",
        )
        .is_empty());
        assert!(lint_src(
            "crates/head/src/a.rs",
            "head",
            "fn f() { pool.spawn(job); thread::sleep(d); }",
        )
        .is_empty());
    }

    #[test]
    fn hash_collections_only_in_ordered_crates() {
        let d = lint_src(
            "crates/decision/src/a.rs",
            "decision",
            "use std::collections::HashMap;",
        );
        assert_eq!(rules_of(&d), vec!["hash-collections"]);
        assert!(lint_src("crates/nn/src/a.rs", "nn", "use std::collections::HashMap;").is_empty());
    }

    #[test]
    fn panic_pass_flags_calls_not_strings() {
        let d = lint_src(
            "crates/nn/src/a.rs",
            "nn",
            r#"fn f() { x.unwrap(); let s = "do not unwrap() here or panic!"; }"#,
        );
        assert_eq!(rules_of(&d), vec!["panic"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn panic_pass_skips_unwrap_or_variants() {
        assert!(lint_src(
            "crates/nn/src/a.rs",
            "nn",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(g); z.unwrap_or_default(); }",
        )
        .is_empty());
    }

    #[test]
    fn panic_pass_skips_test_code() {
        assert!(lint_src(
            "crates/nn/src/a.rs",
            "nn",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(\"boom\"); } }",
        )
        .is_empty());
    }

    #[test]
    fn index_pass_is_a_warning() {
        let d = lint_src("crates/nn/src/a.rs", "nn", "fn f() { let x = v[0]; }");
        assert_eq!(rules_of(&d), vec!["index-panic"]);
        assert_eq!(d[0].severity, Severity::Warn);
    }

    #[test]
    fn float_eq_fires_even_in_tests() {
        let d = lint_src(
            "crates/sensor/src/a.rs",
            "sensor",
            "#[test]\nfn t() { assert!(a == 0.5); }",
        );
        assert_eq!(rules_of(&d), vec!["float-eq"]);
    }

    #[test]
    fn float_eq_ignores_integer_comparison() {
        assert!(lint_src(
            "crates/sensor/src/a.rs",
            "sensor",
            "fn f() { if n == 0 {} }"
        )
        .is_empty());
    }

    #[test]
    fn float_cast_heuristics() {
        let d = lint_src(
            "crates/nn/src/a.rs",
            "nn",
            "fn f() { let a = (x / y) as f32; let b = total as f32; let c = z.sqrt() as usize; }",
        );
        assert_eq!(rules_of(&d), vec!["float-cast", "float-cast"]);
    }

    #[test]
    fn float_cast_only_in_numeric_crates() {
        assert!(lint_src(
            "crates/head/src/a.rs",
            "head",
            "fn f() { let a = (x / y) as f32; }",
        )
        .is_empty());
    }

    #[test]
    fn graph_churn_flags_non_constructor_construction() {
        let d = lint_src(
            "crates/decision/src/a.rs",
            "decision",
            "fn act(&mut self) { let mut g = Graph::new(); }",
        );
        assert_eq!(rules_of(&d), vec!["graph-churn"]);
    }

    #[test]
    fn graph_churn_allows_constructors_tests_and_bins() {
        assert!(lint_src(
            "crates/decision/src/a.rs",
            "decision",
            "impl T { fn new() -> Self { Self { tape: Graph::new() } } }",
        )
        .is_empty());
        assert!(lint_src(
            "crates/nn/src/a.rs",
            "nn",
            "#[cfg(test)]\nmod tests { fn t() { let mut g = Graph::new(); } }",
        )
        .is_empty());
        assert!(lint_src(
            "crates/bench/src/bin/perf.rs",
            "bench",
            "fn bench() { let mut g = Graph::new(); }",
        )
        .is_empty());
    }

    #[test]
    fn graph_churn_resets_at_the_next_function() {
        // A `fn new` earlier in the file must not shield later functions.
        let d = lint_src(
            "crates/decision/src/a.rs",
            "decision",
            "fn new() -> Graph { Graph::new() }\nfn step() { let g = Graph::new(); }",
        );
        assert_eq!(rules_of(&d), vec!["graph-churn"]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn telemetry_keys_literal_policing() {
        let d = lint_src(
            "crates/head/src/a.rs",
            "head",
            r#"fn f() { counter_add("sim.typo", 1); gauge_set("sim.good", 2.0); counter_add(keys::GOOD, 1); }"#,
        );
        assert_eq!(rules_of(&d), vec!["telemetry-keys", "telemetry-keys"]);
        assert!(d[0].message.contains("not registered"));
        assert!(d[1].message.contains("passed as a literal"));
    }

    #[test]
    fn telemetry_keys_skips_definitions_and_tests() {
        assert!(lint_src(
            "crates/telemetry/src/metrics.rs",
            "telemetry",
            r#"pub fn counter_add(name: &str, v: u64) {}
#[cfg(test)]
mod tests { fn t() { counter_add("adhoc.key", 1); } }"#,
        )
        .is_empty());
    }

    #[test]
    fn recorder_keys_literal_policing() {
        let d = lint_src(
            "crates/head/src/a.rs",
            "head",
            r#"fn f() { telemetry::flight_record("flight.typo", 1.0); telemetry::flight_dump("sim.good"); flight_record(keys::GOOD, 0.0); }"#,
        );
        assert_eq!(rules_of(&d), vec!["recorder-keys", "recorder-keys"]);
        assert!(d[0].message.contains("not registered"));
        assert!(d[1].message.contains("passed as a literal"));
    }

    #[test]
    fn recorder_keys_skips_definitions_and_tests() {
        assert!(lint_src(
            "crates/telemetry/src/flight.rs",
            "telemetry",
            r#"pub fn flight_record(name: &'static str, value: f64) {}
#[cfg(test)]
mod tests { fn t() { flight_record("adhoc.key", 1.0); } }"#,
        )
        .is_empty());
    }

    #[test]
    fn span_macro_argument_is_checked() {
        let d = lint_src(
            "crates/head/src/a.rs",
            "head",
            r#"fn f() { let _g = span!("nope.span"); }"#,
        );
        assert_eq!(rules_of(&d), vec!["telemetry-keys"]);
    }

    #[test]
    fn lint_header_flags_missing_attrs_only_in_lib_rs() {
        let d = lint_src("crates/head/src/lib.rs", "head", "pub fn f() {}");
        assert_eq!(rules_of(&d), vec!["lint-header", "lint-header"]);
        assert!(lint_src("crates/head/src/train.rs", "head", "pub fn f() {}").is_empty());
        let ok = lint_src(
            "crates/head/src/lib.rs",
            "head",
            "#![deny(clippy::unwrap_used)]\n#![cfg_attr(test, allow(clippy::unwrap_used))]\npub fn f() {}",
        );
        assert!(ok.is_empty());
    }
}
