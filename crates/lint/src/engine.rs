//! The lint driver: workspace walking, pass execution, allow-directive
//! suppression and the final [`Report`].
//!
//! The filesystem layer ([`run`]) collects `.rs` files under
//! `crates/*/src` and `crates/*/tests` (or an explicit path list),
//! loads the `telemetry::keys` registry, and hands everything to the pure
//! core [`lint_files`], which is what the unit tests exercise.

use std::fs;
use std::path::{Path, PathBuf};

use telemetry::Json;

use crate::passes::{check_unused_keys, run_file_passes, Context, Diagnostic, Severity};
use crate::registry::KeyRegistry;
use crate::source::SourceFile;

/// What to lint and how strictly.
pub struct Options {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Explicit files or directories to lint instead of the whole
    /// workspace. Empty means walk `crates/*/src` and `crates/*/tests`.
    pub paths: Vec<PathBuf>,
    /// Rules whose warnings are promoted to errors.
    pub deny: Vec<String>,
}

/// The outcome of a lint run.
pub struct Report {
    /// Number of files analysed.
    pub files: usize,
    /// All diagnostics, sorted by file, line, column, rule.
    pub diags: Vec<Diagnostic>,
}

impl Report {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Human-readable diagnostics, one per line, plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&format!(
                "{}[{}] {}:{}:{}: {}\n",
                d.severity.label(),
                d.rule,
                d.file,
                d.line,
                d.col,
                d.message
            ));
        }
        out.push_str(&format!(
            "headlint: {} files, {} errors, {} warnings\n",
            self.files,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Machine report, serialised with telemetry's JSON writer.
    pub fn to_json(&self, root: &str) -> Json {
        let diags: Vec<Json> = self
            .diags
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("rule", Json::from(d.rule)),
                    ("severity", Json::from(d.severity.label())),
                    ("file", Json::from(d.file.as_str())),
                    ("line", Json::from(u64::from(d.line))),
                    ("col", Json::from(u64::from(d.col))),
                    ("message", Json::from(d.message.as_str())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("tool", Json::from("headlint")),
            ("root", Json::from(root)),
            ("files", Json::from(self.files)),
            ("errors", Json::from(self.errors())),
            ("warnings", Json::from(self.warnings())),
            ("diagnostics", Json::Arr(diags)),
        ])
    }
}

/// Pure lint core: runs every pass over the analysed files, applies allow
/// directives, emits directive hygiene diagnostics, promotes `deny` rules
/// and sorts the result.
pub fn lint_files(mut files: Vec<SourceFile>, ctx: &Context, deny: &[String]) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for f in &files {
        run_file_passes(f, ctx, &mut raw);
    }
    check_unused_keys(&files, ctx, &mut raw);

    // Allow-directive suppression: a diagnostic on a line covered by a
    // directive naming its rule is dropped, and the directive is marked
    // used. `allow-no-reason` itself cannot be allowed away.
    let mut diags = Vec::new();
    for d in raw {
        let suppressed = files
            .iter_mut()
            .find(|f| f.path == d.file)
            .and_then(|f| {
                f.allows
                    .iter_mut()
                    .find(|a| a.applies_line == d.line && a.rules.iter().any(|r| r == d.rule))
            })
            .map(|a| {
                a.used = true;
            })
            .is_some();
        if !suppressed {
            diags.push(d);
        }
    }

    // Directive hygiene: reasons are mandatory; stale directives are noise.
    for f in &files {
        for a in &f.allows {
            if a.reason.is_empty() {
                diags.push(Diagnostic {
                    rule: "allow-no-reason",
                    severity: Severity::Error,
                    file: f.path.clone(),
                    line: a.directive_line,
                    col: 1,
                    message: format!(
                        "lint:allow({}) has no justification; append the reason after \
                         the closing parenthesis",
                        a.rules.join(", ")
                    ),
                });
            } else if !a.used {
                diags.push(Diagnostic {
                    rule: "unused-allow",
                    severity: Severity::Warn,
                    file: f.path.clone(),
                    line: a.directive_line,
                    col: 1,
                    message: format!(
                        "lint:allow({}) suppressed nothing on line {}; remove it or fix \
                         the rule list",
                        a.rules.join(", "),
                        a.applies_line
                    ),
                });
            }
        }
    }

    for d in &mut diags {
        if deny.iter().any(|r| r == d.rule) {
            d.severity = Severity::Error;
        }
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    diags
}

/// Runs the linter per `opts`, reading sources from disk.
pub fn run(opts: &Options) -> Result<Report, String> {
    let mut paths = Vec::new();
    if opts.paths.is_empty() {
        collect_workspace(&opts.root, &mut paths)?;
    } else {
        for p in &opts.paths {
            let p = if p.is_absolute() {
                p.clone()
            } else {
                opts.root.join(p)
            };
            if p.is_dir() {
                collect_rs(&p, &mut paths)?;
            } else {
                paths.push(p);
            }
        }
        paths.sort();
    }

    let mut files = Vec::new();
    for p in &paths {
        let src = fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let rel = rel_path(&opts.root, p);
        let crate_name = crate_of(&rel);
        files.push(SourceFile::analyse(rel, crate_name, &src));
    }

    let keys_path = opts.root.join("crates/telemetry/src/keys.rs");
    let keys = match fs::read_to_string(&keys_path) {
        Ok(src) => KeyRegistry::parse(&src),
        Err(_) => KeyRegistry::default(),
    };
    let ctx = Context { keys };

    let count = files.len();
    let diags = lint_files(files, &ctx, &opts.deny);
    Ok(Report {
        files: count,
        diags,
    })
}

/// Collects `.rs` files under every `crates/*/src` and `crates/*/tests`,
/// in sorted order.
fn collect_workspace(root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let crates = root.join("crates");
    let mut crate_dirs = Vec::new();
    let entries = fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", crates.display()))?;
        if entry.path().is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["src", "tests"] {
            let d = dir.join(sub);
            if d.is_dir() {
                collect_rs(&d, out)?;
            }
        }
    }
    Ok(())
}

/// Recursively collects `.rs` files under `dir`, sorted per directory.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Workspace-relative display path with forward slashes.
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.to_string_lossy().replace('\\', "/")
}

/// Crate directory name for a `crates/<name>/...` relative path.
fn crate_of(rel: &str) -> String {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("").to_string(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context {
            keys: KeyRegistry::default(),
        }
    }

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::analyse(path.into(), crate_of(path), src)
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts_as_used() {
        let f = file(
            "crates/nn/src/a.rs",
            "fn f() {\n    // lint:allow(panic) cannot fail: invariant upheld by caller\n    x.expect(\"boom\");\n}\n",
        );
        let diags = lint_files(vec![f], &ctx(), &[]);
        assert!(diags.is_empty(), "got: {diags:?}");
    }

    #[test]
    fn allow_without_reason_suppresses_but_errors() {
        let f = file(
            "crates/nn/src/a.rs",
            "fn f() {\n    // lint:allow(panic)\n    x.expect(\"boom\");\n}\n",
        );
        let diags = lint_files(vec![f], &ctx(), &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-no-reason");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let f = file(
            "crates/nn/src/a.rs",
            "fn f() {\n    // lint:allow(float-eq) wrong rule\n    x.expect(\"boom\");\n}\n",
        );
        let diags = lint_files(vec![f], &ctx(), &[]);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"panic"));
        assert!(rules.contains(&"unused-allow"));
    }

    #[test]
    fn deny_promotes_warnings_to_errors() {
        let f = file("crates/nn/src/a.rs", "fn f() { let x = v[0]; }");
        let diags = lint_files(vec![f], &ctx(), &["index-panic".to_string()]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn report_counts_and_json_shape() {
        let f = file("crates/nn/src/a.rs", "fn f() { x.unwrap(); let y = v[0]; }");
        let diags = lint_files(vec![f], &ctx(), &[]);
        let report = Report { files: 1, diags };
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
        let json = report.to_json("/ws");
        assert_eq!(json.get("tool").and_then(|j| j.as_str()), Some("headlint"));
        assert_eq!(json.get("errors").and_then(|j| j.as_f64()), Some(1.0));
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("round-trip");
        assert_eq!(parsed, json);
        let human = report.render_human();
        assert!(human.contains("error[panic]"));
        assert!(human.contains("1 errors, 1 warnings"));
    }

    #[test]
    fn diagnostics_are_sorted_by_location() {
        let a = file("crates/nn/src/b.rs", "fn f() { x.unwrap(); }");
        let b = file("crates/nn/src/a.rs", "fn g() { y.unwrap(); z.unwrap(); }");
        let diags = lint_files(vec![a, b], &ctx(), &[]);
        let files: Vec<&str> = diags.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(
            files,
            vec![
                "crates/nn/src/a.rs",
                "crates/nn/src/a.rs",
                "crates/nn/src/b.rs"
            ]
        );
        assert!(diags[0].col < diags[1].col);
    }

    #[test]
    fn crate_of_extracts_directory_name() {
        assert_eq!(crate_of("crates/traffic-sim/src/sim.rs"), "traffic-sim");
        assert_eq!(crate_of("scripts/x.rs"), "");
    }
}
