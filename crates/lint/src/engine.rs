//! The lint driver: workspace walking, per-file analysis (parallel,
//! cached), workspace passes, allow-directive suppression and the final
//! [`Report`].
//!
//! The filesystem layer ([`run`]) collects `.rs` files under
//! `crates/*/{benches,src,tests}` plus the root `examples/` and `tests/`
//! directories (or an explicit path list), loads the `telemetry::keys`
//! registry and the crate manifests (for call-graph dependency scoping),
//! then maps [`analyse_source`] over the files — through `par::Pool`, so
//! a multi-threaded lint run is byte-identical to a serial one, and
//! through the content-hash [`crate::cache::Cache`] when enabled. The
//! pure core [`lint_facts`] (and its [`lint_files`] convenience wrapper)
//! is what the unit tests exercise.

use std::fs;
use std::path::{Path, PathBuf};

use telemetry::Json;

use crate::cache::{fnv64, salt, Cache};
use crate::callgraph::dep_map_from_manifests;
use crate::items::{extract, FileItems};
use crate::passes::{run_file_passes, Context, Diagnostic, Severity};
use crate::registry::KeyRegistry;
use crate::source::{Allow, SourceFile};
use crate::taint::run_workspace_passes;

/// What to lint and how strictly.
pub struct Options {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Explicit files or directories to lint instead of the whole
    /// workspace. Empty means the default walk (see module docs).
    pub paths: Vec<PathBuf>,
    /// Rules whose warnings are promoted to errors.
    pub deny: Vec<String>,
    /// Worker threads for per-file analysis. Any value produces
    /// byte-identical output (ordered reduction); 0/1 run serially.
    pub threads: usize,
    /// Incremental cache file; `None` disables caching.
    pub cache: Option<PathBuf>,
}

/// Everything the workspace passes need to know about one analysed file:
/// its raw (pre-suppression) per-file diagnostics, its allow directives,
/// and its extracted items. This — not [`SourceFile`] — is the unit the
/// incremental cache stores, so it deliberately holds no token stream.
#[derive(Clone, Debug)]
pub struct FileFacts {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate directory name under `crates/` (empty outside `crates/`).
    pub crate_name: String,
    /// FNV-1a hash of the source bytes (cache key).
    pub hash: u64,
    /// Raw per-file diagnostics, before allow suppression.
    pub diags: Vec<Diagnostic>,
    /// Parsed allow directives (suppression is replayed every run).
    pub allows: Vec<Allow>,
    /// Extracted items for the call-graph passes.
    pub items: FileItems,
}

/// The outcome of a lint run.
pub struct Report {
    /// Number of files analysed.
    pub files: usize,
    /// Files served from the incremental cache (0 when caching is off).
    pub cache_hits: usize,
    /// Files analysed from scratch.
    pub cache_misses: usize,
    /// All diagnostics, sorted by file, line, column, rule.
    pub diags: Vec<Diagnostic>,
}

impl Report {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Human-readable diagnostics, one per line, plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&format!(
                "{}[{}] {}:{}:{}: {}\n",
                d.severity.label(),
                d.rule,
                d.file,
                d.line,
                d.col,
                d.message
            ));
        }
        out.push_str(&format!(
            "headlint: {} files, {} errors, {} warnings\n",
            self.files,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Machine report, serialised with telemetry's JSON writer.
    pub fn to_json(&self, root: &str) -> Json {
        let diags: Vec<Json> = self
            .diags
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("rule", Json::from(d.rule)),
                    ("severity", Json::from(d.severity.label())),
                    ("file", Json::from(d.file.as_str())),
                    ("line", Json::from(u64::from(d.line))),
                    ("col", Json::from(u64::from(d.col))),
                    ("message", Json::from(d.message.as_str())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("tool", Json::from("headlint")),
            ("root", Json::from(root)),
            ("files", Json::from(self.files)),
            ("errors", Json::from(self.errors())),
            ("warnings", Json::from(self.warnings())),
            ("diagnostics", Json::Arr(diags)),
        ])
    }
}

/// Analyses one source file into its cacheable facts: per-file pass
/// diagnostics, allow directives, extracted items, content hash.
pub fn analyse_source(path: String, crate_name: String, src: &str, ctx: &Context) -> FileFacts {
    let hash = fnv64(src.as_bytes());
    facts_of(SourceFile::analyse(path, crate_name, src), ctx, hash)
}

fn facts_of(f: SourceFile, ctx: &Context, hash: u64) -> FileFacts {
    let mut diags = Vec::new();
    run_file_passes(&f, ctx, &mut diags);
    let items = extract(&f, &ctx.keys);
    FileFacts {
        path: f.path,
        crate_name: f.crate_name,
        hash,
        diags,
        allows: f.allows,
        items,
    }
}

/// Convenience wrapper over [`lint_facts`] for callers holding analysed
/// [`SourceFile`]s (the unit tests, mostly).
pub fn lint_files(files: Vec<SourceFile>, ctx: &Context, deny: &[String]) -> Vec<Diagnostic> {
    let facts = files.into_iter().map(|f| facts_of(f, ctx, 0)).collect();
    lint_facts(facts, ctx, deny)
}

/// Pure lint core: takes per-file facts (fresh or cached — they are
/// identical by construction), runs the workspace passes, applies allow
/// directives, emits directive hygiene diagnostics, promotes `deny`
/// rules and sorts the result.
pub fn lint_facts(mut facts: Vec<FileFacts>, ctx: &Context, deny: &[String]) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for f in &facts {
        raw.extend(f.diags.iter().cloned());
    }
    run_workspace_passes(&facts, ctx, &mut raw);

    // Allow-directive suppression: a diagnostic on a line covered by a
    // directive naming its rule is dropped, and the directive is marked
    // used. `allow-no-reason` itself cannot be allowed away.
    let mut diags = Vec::new();
    for d in raw {
        let suppressed = facts
            .iter_mut()
            .find(|f| f.path == d.file)
            .and_then(|f| {
                f.allows
                    .iter_mut()
                    .find(|a| a.applies_line == d.line && a.rules.iter().any(|r| r == d.rule))
            })
            .map(|a| {
                a.used = true;
            })
            .is_some();
        if !suppressed {
            diags.push(d);
        }
    }

    // Directive hygiene: reasons are mandatory; stale directives are noise.
    for f in &facts {
        for a in &f.allows {
            if a.reason.is_empty() {
                diags.push(Diagnostic {
                    rule: "allow-no-reason",
                    severity: Severity::Error,
                    file: f.path.clone(),
                    line: a.directive_line,
                    col: 1,
                    message: format!(
                        "lint:allow({}) has no justification; append the reason after \
                         the closing parenthesis",
                        a.rules.join(", ")
                    ),
                });
            } else if !a.used {
                diags.push(Diagnostic {
                    rule: "unused-allow",
                    severity: Severity::Warn,
                    file: f.path.clone(),
                    line: a.directive_line,
                    col: 1,
                    message: format!(
                        "lint:allow({}) suppressed nothing on line {}; remove it or fix \
                         the rule list",
                        a.rules.join(", "),
                        a.applies_line
                    ),
                });
            }
        }
    }

    for d in &mut diags {
        if deny.iter().any(|r| r == d.rule) {
            d.severity = Severity::Error;
        }
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    diags
}

/// Runs the linter per `opts`, reading sources from disk.
pub fn run(opts: &Options) -> Result<Report, String> {
    let mut paths = Vec::new();
    if opts.paths.is_empty() {
        collect_workspace(&opts.root, &mut paths)?;
    } else {
        for p in &opts.paths {
            let p = if p.is_absolute() {
                p.clone()
            } else {
                opts.root.join(p)
            };
            if p.is_dir() {
                collect_rs(&p, &mut paths)?;
            } else {
                paths.push(p);
            }
        }
        paths.sort();
    }

    let keys_path = opts.root.join("crates/telemetry/src/keys.rs");
    let keys_src = fs::read_to_string(&keys_path).unwrap_or_default();
    let ctx = Context {
        keys: KeyRegistry::parse(&keys_src),
        deps: dep_map_from_manifests(&read_manifests(&opts.root)?),
    };

    // Per-file analysis, in parallel behind the incremental cache. The
    // cache key is (path, content hash) under a salt covering the rule
    // set and keys.rs — anything else that could change a file's facts.
    let cache_salt = salt(&keys_src);
    let cache = match &opts.cache {
        Some(p) => Cache::load(p, cache_salt),
        None => Cache::default(),
    };
    let mut inputs = Vec::with_capacity(paths.len());
    for p in &paths {
        let src = fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let rel = rel_path(&opts.root, p);
        let crate_name = crate_of(&rel);
        inputs.push((rel, crate_name, src));
    }
    let pool = par::Pool::new(opts.threads.max(1));
    let results: Vec<(FileFacts, bool)> = pool
        .try_map(inputs, |_, (rel, crate_name, src)| {
            let hash = fnv64(src.as_bytes());
            match cache.lookup(&rel, hash) {
                Some(facts) => (facts, true),
                None => (analyse_source(rel, crate_name, &src, &ctx), false),
            }
        })
        .map_err(|e| format!("lint worker pool: {e}"))?;
    let cache_hits = results.iter().filter(|(_, hit)| *hit).count();
    let cache_misses = results.len() - cache_hits;
    let facts: Vec<FileFacts> = results.into_iter().map(|(f, _)| f).collect();
    if let Some(p) = &opts.cache {
        Cache::save(p, cache_salt, &facts)?;
    }

    let count = facts.len();
    telemetry::counter_add(telemetry::keys::LINT_FILES, count as u64);
    telemetry::counter_add(telemetry::keys::LINT_CACHE_HITS, cache_hits as u64);
    telemetry::counter_add(telemetry::keys::LINT_CACHE_MISSES, cache_misses as u64);
    let diags = lint_facts(facts, &ctx, &opts.deny);
    Ok(Report {
        files: count,
        cache_hits,
        cache_misses,
        diags,
    })
}

/// The default workspace walk, exposed so the coverage test can assert it
/// visits every `.rs` file the repo holds.
pub fn workspace_paths(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    collect_workspace(root, &mut out)?;
    Ok(out)
}

/// Collects `.rs` files under every `crates/*/{benches,src,tests}` plus
/// the root `examples/` and `tests/` directories, in sorted order.
fn collect_workspace(root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let crates = root.join("crates");
    let mut crate_dirs = Vec::new();
    let entries = fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", crates.display()))?;
        if entry.path().is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["benches", "src", "tests"] {
            let d = dir.join(sub);
            if d.is_dir() {
                collect_rs(&d, out)?;
            }
        }
    }
    for sub in ["examples", "tests"] {
        let d = root.join(sub);
        if d.is_dir() {
            collect_rs(&d, out)?;
        }
    }
    Ok(())
}

/// Reads every `crates/*/Cargo.toml` as (crate directory name, contents),
/// for call-graph dependency scoping.
fn read_manifests(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates = root.join("crates");
    let mut manifests = Vec::new();
    let Ok(entries) = fs::read_dir(&crates) else {
        return Ok(manifests); // no crates/ at all: explicit-path lint runs
    };
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            manifests.push((name, text));
        }
    }
    Ok(manifests)
}

/// Recursively collects `.rs` files under `dir`, sorted per directory.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Workspace-relative display path with forward slashes.
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.to_string_lossy().replace('\\', "/")
}

/// Crate directory name for a `crates/<name>/...` relative path.
fn crate_of(rel: &str) -> String {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("").to_string(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(KeyRegistry::default())
    }

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::analyse(path.into(), crate_of(path), src)
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts_as_used() {
        let f = file(
            "crates/nn/src/a.rs",
            "fn f() {\n    // lint:allow(panic) cannot fail: invariant upheld by caller\n    x.expect(\"boom\");\n}\n",
        );
        let diags = lint_files(vec![f], &ctx(), &[]);
        assert!(diags.is_empty(), "got: {diags:?}");
    }

    #[test]
    fn allow_without_reason_suppresses_but_errors() {
        let f = file(
            "crates/nn/src/a.rs",
            "fn f() {\n    // lint:allow(panic)\n    x.expect(\"boom\");\n}\n",
        );
        let diags = lint_files(vec![f], &ctx(), &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-no-reason");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let f = file(
            "crates/nn/src/a.rs",
            "fn f() {\n    // lint:allow(float-eq) wrong rule\n    x.expect(\"boom\");\n}\n",
        );
        let diags = lint_files(vec![f], &ctx(), &[]);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"panic"));
        assert!(rules.contains(&"unused-allow"));
    }

    #[test]
    fn deny_promotes_warnings_to_errors() {
        let f = file("crates/nn/src/a.rs", "fn f() { let x = v[0]; }");
        let diags = lint_files(vec![f], &ctx(), &["index-panic".to_string()]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn report_counts_and_json_shape() {
        let f = file("crates/nn/src/a.rs", "fn f() { x.unwrap(); let y = v[0]; }");
        let diags = lint_files(vec![f], &ctx(), &[]);
        let report = Report {
            files: 1,
            cache_hits: 0,
            cache_misses: 1,
            diags,
        };
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
        let json = report.to_json("/ws");
        assert_eq!(json.get("tool").and_then(|j| j.as_str()), Some("headlint"));
        assert_eq!(json.get("errors").and_then(|j| j.as_f64()), Some(1.0));
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("round-trip");
        assert_eq!(parsed, json);
        let human = report.render_human();
        assert!(human.contains("error[panic]"));
        assert!(human.contains("1 errors, 1 warnings"));
    }

    #[test]
    fn diagnostics_are_sorted_by_location() {
        let a = file("crates/nn/src/b.rs", "fn f() { x.unwrap(); }");
        let b = file("crates/nn/src/a.rs", "fn g() { y.unwrap(); z.unwrap(); }");
        let diags = lint_files(vec![a, b], &ctx(), &[]);
        let files: Vec<&str> = diags.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(
            files,
            vec![
                "crates/nn/src/a.rs",
                "crates/nn/src/a.rs",
                "crates/nn/src/b.rs"
            ]
        );
        assert!(diags[0].col < diags[1].col);
    }

    #[test]
    fn crate_of_extracts_directory_name() {
        assert_eq!(crate_of("crates/traffic-sim/src/sim.rs"), "traffic-sim");
        assert_eq!(crate_of("scripts/x.rs"), "");
    }
}
