//! Content-hash incremental cache for per-file analysis.
//!
//! Per-file work (lexing, the per-file passes, item extraction) dominates
//! a lint run, and its result depends only on the file's bytes plus a
//! small amount of global state: the rule set and the `telemetry::keys`
//! registry (key references are resolved against it at extraction time).
//! So the cache maps `path → (content hash, FileFacts)` and carries one
//! global *salt* — a hash of the cache format version, every rule name,
//! and the keys.rs source. Any salt mismatch discards the whole cache;
//! any per-file hash mismatch re-analyses that file only.
//!
//! Workspace passes (suppression, the call-graph rules) are replayed on
//! every run from the cached facts, so cross-file effects — an
//! `unused-allow` that appears because *another* file changed, a taint
//! path that grew a new hop — can never go stale. Cached and fresh facts
//! are byte-identical by construction, which keeps warm-cache lint output
//! identical to cold-cache output.
//!
//! Serialisation rides on `telemetry::Json`. Hashes are hex strings
//! (JSON numbers are f64 and would silently round u64 hashes); lines and
//! columns are plain numbers (far below 2^53).

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use telemetry::Json;

use crate::engine::FileFacts;
use crate::items::{CallKind, CallRef, FileItems, FnItem, Site};
use crate::passes::{rule, Diagnostic, Severity, RULES};
use crate::source::Allow;

/// Bumped whenever FileFacts serialisation or pass semantics change.
pub const CACHE_VERSION: u64 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the same family the `par` checksum gates
/// use; collisions only cost a spurious re-analysis.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The global cache salt: format version + rule list + keys.rs source.
pub fn salt(keys_src: &str) -> u64 {
    let mut acc = String::new();
    acc.push_str(&CACHE_VERSION.to_string());
    for r in RULES {
        acc.push('\n');
        acc.push_str(r.name);
    }
    acc.push('\n');
    acc.push_str(keys_src);
    fnv64(acc.as_bytes())
}

/// A loaded cache: path → facts (each carrying its content hash).
#[derive(Default)]
pub struct Cache {
    entries: BTreeMap<String, FileFacts>,
}

impl Cache {
    /// Loads the cache at `path`. Any error — missing file, parse
    /// failure, salt mismatch — yields an empty cache: the cache is an
    /// accelerator, never a correctness input.
    pub fn load(path: &Path, expected_salt: u64) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        let Ok(json) = Json::parse(&text) else {
            return Cache::default();
        };
        if json.get("salt").and_then(Json::as_str) != Some(hex(expected_salt).as_str()) {
            return Cache::default();
        }
        let mut entries = BTreeMap::new();
        if let Some(Json::Arr(files)) = json.get("files") {
            for f in files {
                if let Some(facts) = facts_from_json(f) {
                    entries.insert(facts.path.clone(), facts);
                }
            }
        }
        Cache { entries }
    }

    /// The cached facts for `path` when its content hash still matches.
    pub fn lookup(&self, path: &str, hash: u64) -> Option<FileFacts> {
        self.entries.get(path).filter(|f| f.hash == hash).cloned()
    }

    /// Writes a fresh cache holding `facts` under the given salt.
    pub fn save(path: &Path, cache_salt: u64, facts: &[FileFacts]) -> Result<(), String> {
        let files: Vec<Json> = facts.iter().map(facts_to_json).collect();
        let doc = Json::obj(vec![
            ("version", Json::from(CACHE_VERSION)),
            ("salt", Json::from(hex(cache_salt))),
            ("files", Json::Arr(files)),
        ]);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        fs::write(path, doc.to_string()).map_err(|e| format!("write {}: {e}", path.display()))
    }
}

fn hex(v: u64) -> String {
    format!("{v:016x}")
}

fn from_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

fn u32_of(j: Option<&Json>) -> Option<u32> {
    let v = j?.as_f64()?;
    if !(0.0..=f64::from(u32::MAX)).contains(&v) {
        return None;
    }
    // An exact integer survives the u32 round-trip; anything fractional
    // (or NaN, rejected by the range check) does not.
    let n = v as u32;
    if f64::from(n) == v {
        Some(n)
    } else {
        None
    }
}

fn str_of(j: Option<&Json>) -> Option<String> {
    j?.as_str().map(str::to_string)
}

fn bool_of(j: Option<&Json>) -> Option<bool> {
    match j? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn str_arr(j: Option<&Json>) -> Option<Vec<String>> {
    match j? {
        Json::Arr(items) => items.iter().map(|i| str_of(Some(i))).collect(),
        _ => None,
    }
}

fn site_to_json(s: &Site) -> Json {
    Json::Arr(vec![
        Json::from(u64::from(s.line)),
        Json::from(u64::from(s.col)),
        Json::from(s.what.as_str()),
    ])
}

fn site_from_json(j: &Json) -> Option<Site> {
    let Json::Arr(parts) = j else { return None };
    Some(Site {
        line: u32_of(parts.first())?,
        col: u32_of(parts.get(1))?,
        what: str_of(parts.get(2))?,
    })
}

fn facts_to_json(f: &FileFacts) -> Json {
    let diags: Vec<Json> = f
        .diags
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("r", Json::from(d.rule)),
                ("s", Json::from(d.severity.label())),
                ("l", Json::from(u64::from(d.line))),
                ("c", Json::from(u64::from(d.col))),
                ("m", Json::from(d.message.as_str())),
            ])
        })
        .collect();
    let allows: Vec<Json> = f
        .allows
        .iter()
        .map(|a| {
            Json::obj(vec![
                (
                    "rules",
                    Json::Arr(a.rules.iter().map(|r| Json::from(r.as_str())).collect()),
                ),
                ("reason", Json::from(a.reason.as_str())),
                ("dline", Json::from(u64::from(a.directive_line))),
                ("aline", Json::from(u64::from(a.applies_line))),
            ])
        })
        .collect();
    let fns: Vec<Json> = f
        .items
        .fns
        .iter()
        .map(|fun| {
            let calls: Vec<Json> = fun
                .calls
                .iter()
                .map(|c| {
                    Json::Arr(vec![
                        Json::from(c.kind.tag()),
                        Json::from(c.name.as_str()),
                        Json::from(c.qual.as_str()),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("name", Json::from(fun.name.as_str())),
                ("qual", Json::from(fun.qual.as_str())),
                ("line", Json::from(u64::from(fun.line))),
                ("test", Json::Bool(fun.is_test)),
                ("calls", Json::Arr(calls)),
                (
                    "panic",
                    Json::Arr(fun.panic_sites.iter().map(site_to_json).collect()),
                ),
                (
                    "index",
                    Json::Arr(fun.index_sites.iter().map(site_to_json).collect()),
                ),
                (
                    "src",
                    Json::Arr(fun.source_sites.iter().map(site_to_json).collect()),
                ),
                (
                    "keys",
                    Json::Arr(
                        fun.key_refs
                            .iter()
                            .map(|k| Json::from(k.as_str()))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("path", Json::from(f.path.as_str())),
        ("crate", Json::from(f.crate_name.as_str())),
        ("hash", Json::from(hex(f.hash))),
        ("diags", Json::Arr(diags)),
        ("allows", Json::Arr(allows)),
        ("fns", Json::Arr(fns)),
        (
            "fsrc",
            Json::Arr(f.items.file_sources.iter().map(site_to_json).collect()),
        ),
        (
            "topkeys",
            Json::Arr(
                f.items
                    .top_key_refs
                    .iter()
                    .map(|k| Json::from(k.as_str()))
                    .collect(),
            ),
        ),
    ])
}

fn facts_from_json(j: &Json) -> Option<FileFacts> {
    let path = str_of(j.get("path"))?;
    let crate_name = str_of(j.get("crate"))?;
    let hash = from_hex(&str_of(j.get("hash"))?)?;

    let Some(Json::Arr(raw_diags)) = j.get("diags") else {
        return None;
    };
    let mut diags = Vec::with_capacity(raw_diags.len());
    for d in raw_diags {
        let name = str_of(d.get("r"))?;
        // Diagnostic.rule is &'static str: resolve through the rule table;
        // an unknown name means a stale/foreign cache — reject the entry.
        let rule_name = rule(&name)?.name;
        let severity = match str_of(d.get("s"))?.as_str() {
            "error" => Severity::Error,
            "warning" => Severity::Warn,
            _ => return None,
        };
        diags.push(Diagnostic {
            rule: rule_name,
            severity,
            file: path.clone(),
            line: u32_of(d.get("l"))?,
            col: u32_of(d.get("c"))?,
            message: str_of(d.get("m"))?,
        });
    }

    let Some(Json::Arr(raw_allows)) = j.get("allows") else {
        return None;
    };
    let mut allows = Vec::with_capacity(raw_allows.len());
    for a in raw_allows {
        allows.push(Allow {
            rules: str_arr(a.get("rules"))?,
            reason: str_of(a.get("reason"))?,
            directive_line: u32_of(a.get("dline"))?,
            applies_line: u32_of(a.get("aline"))?,
            used: false,
        });
    }

    let Some(Json::Arr(raw_fns)) = j.get("fns") else {
        return None;
    };
    let mut fns = Vec::with_capacity(raw_fns.len());
    for f in raw_fns {
        let Some(Json::Arr(raw_calls)) = f.get("calls") else {
            return None;
        };
        let mut calls = Vec::with_capacity(raw_calls.len());
        for c in raw_calls {
            let Json::Arr(parts) = c else { return None };
            calls.push(CallRef {
                kind: CallKind::from_tag(&str_of(parts.first())?)?,
                name: str_of(parts.get(1))?,
                qual: str_of(parts.get(2))?,
            });
        }
        let sites = |key: &str| -> Option<Vec<Site>> {
            match f.get(key) {
                Some(Json::Arr(items)) => items.iter().map(site_from_json).collect(),
                _ => None,
            }
        };
        fns.push(FnItem {
            name: str_of(f.get("name"))?,
            qual: str_of(f.get("qual"))?,
            line: u32_of(f.get("line"))?,
            is_test: bool_of(f.get("test"))?,
            calls,
            panic_sites: sites("panic")?,
            index_sites: sites("index")?,
            source_sites: sites("src")?,
            key_refs: str_arr(f.get("keys"))?,
        });
    }

    let file_sources = match j.get("fsrc") {
        Some(Json::Arr(items)) => items.iter().map(site_from_json).collect::<Option<_>>()?,
        _ => return None,
    };

    Some(FileFacts {
        path,
        crate_name,
        hash,
        diags,
        allows,
        items: FileItems {
            fns,
            file_sources,
            top_key_refs: str_arr(j.get("topkeys"))?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyse_source;
    use crate::passes::Context;
    use crate::registry::KeyRegistry;

    fn sample_facts() -> FileFacts {
        let ctx = Context::new(KeyRegistry::parse("pub const GOOD: &str = \"sim.good\";\n"));
        analyse_source(
            "crates/decision/src/a.rs".to_string(),
            "decision".to_string(),
            "use std::collections::HashMap;\nimpl W {\n    // lint:allow(panic) demo\n    pub fn go(&self) {\n        helper().unwrap();\n        let x = v[0];\n        counter_add(GOOD, 1);\n        decision::pick();\n    }\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { go(); }\n}\n",
            &ctx,
        )
    }

    fn assert_facts_eq(a: &FileFacts, b: &FileFacts) {
        assert_eq!(a.path, b.path);
        assert_eq!(a.crate_name, b.crate_name);
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.diags.len(), b.diags.len());
        for (x, y) in a.diags.iter().zip(&b.diags) {
            assert_eq!(
                (x.rule, x.severity, &x.file, x.line, x.col, &x.message),
                (y.rule, y.severity, &y.file, y.line, y.col, &y.message)
            );
        }
        assert_eq!(a.allows.len(), b.allows.len());
        for (x, y) in a.allows.iter().zip(&b.allows) {
            assert_eq!(x.rules, y.rules);
            assert_eq!(x.reason, y.reason);
            assert_eq!(x.directive_line, y.directive_line);
            assert_eq!(x.applies_line, y.applies_line);
        }
        assert_eq!(a.items.fns.len(), b.items.fns.len());
        for (x, y) in a.items.fns.iter().zip(&b.items.fns) {
            assert_eq!(x, y);
        }
        assert_eq!(a.items.file_sources, b.items.file_sources);
        assert_eq!(a.items.top_key_refs, b.items.top_key_refs);
    }

    #[test]
    fn facts_round_trip_through_json() {
        let facts = sample_facts();
        let json = facts_to_json(&facts);
        let parsed = Json::parse(&json.to_string()).expect("valid json");
        let back = facts_from_json(&parsed).expect("deserialises");
        assert_facts_eq(&facts, &back);
    }

    #[test]
    fn cache_survives_save_and_load() {
        let facts = sample_facts();
        let dir = std::env::temp_dir().join(format!("headlint-cache-test-{}", std::process::id()));
        let path = dir.join("cache.json");
        let s = salt("pub const GOOD: &str = \"sim.good\";\n");
        Cache::save(&path, s, std::slice::from_ref(&facts)).expect("save");
        let cache = Cache::load(&path, s);
        let hit = cache.lookup(&facts.path, facts.hash).expect("hit");
        assert_facts_eq(&facts, &hit);
        assert!(
            cache.lookup(&facts.path, facts.hash ^ 1).is_none(),
            "content change misses"
        );
        let stale = Cache::load(&path, s ^ 1);
        assert!(
            stale.lookup(&facts.path, facts.hash).is_none(),
            "salt change discards everything"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_loads_empty() {
        let dir = std::env::temp_dir().join(format!("headlint-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.json");
        std::fs::write(&path, "{ not json").expect("write");
        let cache = Cache::load(&path, 1);
        assert!(cache.lookup("x", 1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable_and_spread() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_ne!(salt("x"), salt("y"));
    }
}
