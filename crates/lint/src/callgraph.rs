//! Workspace symbol table and over-approximate call graph.
//!
//! Built from the per-file [`FileItems`] summaries, the graph has one
//! node per `fn` item and a directed edge for every call reference that
//! *might* target that item. Resolution is name-based (see `items.rs` for
//! the spelling classification) and then narrowed two ways:
//!
//! 1. **Impl scoping** — `Type::f(..)`, `self.f(..)` and `Self::f(..)`
//!    only link to fns inside `impl Type` blocks.
//! 2. **Crate-dependency scoping** — an edge from crate A to crate B only
//!    exists when B appears in A's (transitive) Cargo.toml dependencies,
//!    parsed by [`dep_map_from_manifests`]. With an empty dependency map
//!    (unit tests, the seeded fixture workspace) every crate is in scope.
//!
//! Reachability queries return a BFS parent forest so diagnostics can
//! print the actual call chain that connects a finding to its root.

use crate::items::{CallKind, FileItems, FnItem};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Transitive dependency map: crate name → crates it may call into
/// (underscore-normalised, includes dev-dependencies).
pub type DepMap = BTreeMap<String, BTreeSet<String>>;

/// One file's contribution to the graph.
pub struct FileUnit<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Crate directory name (empty for root `examples/` and `tests/`).
    pub crate_name: &'a str,
    /// Extracted items.
    pub items: &'a FileItems,
}

/// One `fn` node.
pub struct Node<'a> {
    /// Path of the defining file.
    pub path: &'a str,
    /// Crate of the defining file.
    pub crate_name: &'a str,
    /// The extracted item.
    pub item: &'a FnItem,
    /// Index of the defining file in the build input.
    pub file_idx: usize,
    /// True for binary-like code: `src/bin/` tools and `examples/`.
    /// These are roots for liveness but never callees of library code.
    pub bin_like: bool,
}

/// The workspace call graph.
pub struct Graph<'a> {
    /// All fn nodes, in file order then source order (deterministic).
    pub nodes: Vec<Node<'a>>,
    /// `callees[i]` — sorted, deduplicated node indices `i` may call.
    pub callees: Vec<Vec<usize>>,
}

/// Replaces `-` with `_` so `traffic-sim` (package name) matches
/// `traffic_sim` (the name spelled in `use` paths).
pub fn normalise(name: &str) -> String {
    name.replace('-', "_")
}

/// True when `path` holds binary-like code (CLI tools and examples):
/// allowed to read the environment and print, never a library callee.
pub fn is_bin_like(path: &str) -> bool {
    path.contains("/src/bin/") || path.starts_with("examples/") || path.contains("/examples/")
}

/// The module a file defines, for `module::f(..)` resolution: the file
/// stem, with `mod.rs` taking its directory name and `lib.rs`/`main.rs`
/// taking the crate name.
fn module_of<'a>(path: &'a str, crate_name: &'a str) -> &'a str {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    match stem {
        "mod" => {
            let dir_end = path.len().saturating_sub("/mod.rs".len());
            path[..dir_end].rsplit('/').next().unwrap_or(crate_name)
        }
        "lib" | "main" => crate_name,
        s => s,
    }
}

impl<'a> Graph<'a> {
    /// Builds the graph from per-file item summaries.
    pub fn build(files: &[FileUnit<'a>], deps: &DepMap) -> Graph<'a> {
        let mut nodes = Vec::new();
        for (file_idx, fu) in files.iter().enumerate() {
            let bin_like = is_bin_like(fu.path);
            for item in &fu.items.fns {
                nodes.push(Node {
                    path: fu.path,
                    crate_name: fu.crate_name,
                    item,
                    file_idx,
                    bin_like,
                });
            }
        }

        // Name indexes. Keyed by owned strings to sidestep borrow checker
        // gymnastics; the graph is built once per lint run.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_module: BTreeMap<(String, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(String, &str), Vec<usize>> = BTreeMap::new();
        let mut crate_names: BTreeSet<String> = BTreeSet::new();
        for (i, n) in nodes.iter().enumerate() {
            crate_names.insert(normalise(n.crate_name));
            let name = n.item.name.as_str();
            if n.item.qual.is_empty() {
                free_by_name.entry(name).or_default().push(i);
                let module = module_of(n.path, n.crate_name);
                free_by_module
                    .entry((normalise(module), name))
                    .or_default()
                    .push(i);
                free_by_crate
                    .entry((normalise(n.crate_name), name))
                    .or_default()
                    .push(i);
            } else {
                methods_by_name.entry(name).or_default().push(i);
                by_qual
                    .entry((n.item.qual.as_str(), name))
                    .or_default()
                    .push(i);
            }
        }

        let in_scope = |caller: &Node, callee: &Node| -> bool {
            if callee.bin_like && caller.file_idx != callee.file_idx {
                return false; // binaries and examples are never callees
            }
            if caller.crate_name == callee.crate_name {
                return true;
            }
            if caller.crate_name.is_empty() {
                return true; // root examples/tests may use every crate
            }
            if callee.crate_name.is_empty() {
                return false;
            }
            if deps.is_empty() {
                return true; // no manifest info: stay over-approximate
            }
            deps.get(&normalise(caller.crate_name))
                .is_some_and(|d| d.contains(&normalise(callee.crate_name)))
        };

        let mut callees: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        for caller in &nodes {
            let mut out: Vec<usize> = Vec::new();
            for call in &caller.item.calls {
                let name = call.name.as_str();
                let candidates: Vec<usize> = match call.kind {
                    CallKind::Method if !call.qual.is_empty() => by_qual
                        .get(&(call.qual.as_str(), name))
                        .cloned()
                        .unwrap_or_default(),
                    CallKind::Method => methods_by_name.get(name).cloned().unwrap_or_default(),
                    CallKind::Qualified => {
                        // `Type::f` / `Self::f` — assoc fns of that impl.
                        let typed = by_qual.get(&(call.qual.as_str(), name));
                        if let Some(v) = typed {
                            v.clone()
                        } else if call.qual.is_empty() {
                            // `crate::f` / `self::f` / `super::f`: free fns
                            // of the same crate.
                            free_by_crate
                                .get(&(normalise(caller.crate_name), name))
                                .cloned()
                                .unwrap_or_default()
                        } else if crate_names.contains(&normalise(&call.qual)) {
                            // `other_crate::f`.
                            free_by_crate
                                .get(&(normalise(&call.qual), name))
                                .cloned()
                                .unwrap_or_default()
                        } else {
                            // `module::f` — free fns of that module, any
                            // crate in scope; `std::fs::f` style paths fall
                            // out here and simply match nothing.
                            free_by_module
                                .get(&(normalise(&call.qual), name))
                                .cloned()
                                .unwrap_or_default()
                        }
                    }
                    CallKind::Bare => free_by_name.get(name).cloned().unwrap_or_default(),
                };
                for c in candidates {
                    if in_scope(caller, &nodes[c]) {
                        out.push(c);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            callees.push(out);
        }

        Graph { nodes, callees }
    }

    /// Human-readable symbol name for node `i`: `crate::Type::fn` with the
    /// file stem standing in for the crate outside `crates/`.
    pub fn symbol(&self, i: usize) -> String {
        let n = &self.nodes[i];
        let owner = if n.crate_name.is_empty() {
            module_of(n.path, n.crate_name)
        } else {
            n.crate_name
        };
        if n.item.qual.is_empty() {
            format!("{}::{}", normalise(owner), n.item.name)
        } else {
            format!("{}::{}::{}", normalise(owner), n.item.qual, n.item.name)
        }
    }

    /// BFS over callee edges from `roots`. Returns the parent forest:
    /// `parent[i] = Some(p)` when `i` was reached via `p` (roots point at
    /// themselves), `None` when unreached. Nodes rejected by `skip` are
    /// neither visited nor traversed through. Deterministic: roots are
    /// processed in index order and edge lists are sorted.
    pub fn reach(&self, roots: &[usize], skip: &dyn Fn(&Node) -> bool) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            if !skip(&self.nodes[r]) && parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.callees[u] {
                if parent[v].is_none() && !skip(&self.nodes[v]) {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// Renders the call chain root → ... → `i` from a parent forest, as
    /// `a::f -> b::g -> c::h`, eliding middles beyond five hops.
    pub fn chain(&self, parent: &[Option<usize>], i: usize) -> String {
        let mut rev = vec![i];
        let mut cur = i;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
            if rev.len() > 64 {
                break; // defensive: parent forests have no cycles
            }
        }
        rev.reverse();
        let names: Vec<String> = rev.iter().map(|&n| self.symbol(n)).collect();
        if names.len() > 5 {
            format!(
                "{} -> {} -> ... -> {}",
                names[0],
                names[1],
                names[names.len() - 1]
            )
        } else {
            names.join(" -> ")
        }
    }
}

/// Parses `[dependencies]` / `[dev-dependencies]` sections of workspace
/// crate manifests into a transitively-closed [`DepMap`]. `manifests` maps
/// crate directory name → Cargo.toml text; only dependencies naming other
/// entries of `manifests` are kept (external crates have no graph nodes).
pub fn dep_map_from_manifests(manifests: &[(String, String)]) -> DepMap {
    let members: BTreeSet<String> = manifests.iter().map(|(n, _)| normalise(n)).collect();
    let mut direct: DepMap = DepMap::new();
    for (crate_name, toml) in manifests {
        let mut deps: BTreeSet<String> = BTreeSet::new();
        let mut in_deps = false;
        for raw in toml.lines() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_deps = matches!(line, "[dependencies]" | "[dev-dependencies]");
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            // `name = { workspace = true }`, `name.workspace = true`,
            // `name = "1.0"` all start with the dependency name.
            let name: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            let name = normalise(&name);
            if members.contains(&name) {
                deps.insert(name);
            }
        }
        direct.insert(normalise(crate_name), deps);
    }
    // Transitive closure: a fn in crate A may (over hops) end up calling
    // anything A's dependencies can call.
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = direct.clone();
        for deps in direct.values_mut() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for d in deps.iter() {
                if let Some(dd) = snapshot.get(d) {
                    add.extend(dd.iter().cloned());
                }
            }
            let before = deps.len();
            deps.extend(add);
            changed |= deps.len() != before;
        }
    }
    direct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::registry::KeyRegistry;
    use crate::source::SourceFile;

    fn items_for(path: &str, src: &str) -> FileItems {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let f = SourceFile::analyse(path.into(), crate_name, src);
        extract(&f, &KeyRegistry::parse(""))
    }

    fn graph_of<'a>(files: &'a [(String, String, FileItems)], deps: &DepMap) -> Graph<'a> {
        let units: Vec<FileUnit<'a>> = files
            .iter()
            .map(|(p, c, items)| FileUnit {
                path: p,
                crate_name: c,
                items,
            })
            .collect();
        Graph::build(&units, deps)
    }

    fn file(path: &str, src: &str) -> (String, String, FileItems) {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        (path.to_string(), crate_name, items_for(path, src))
    }

    fn idx(g: &Graph, name: &str) -> usize {
        (0..g.nodes.len())
            .find(|&i| g.nodes[i].item.name == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn bare_calls_link_to_free_fns_across_crates() {
        let files = vec![
            file("crates/a/src/lib.rs", "pub fn top() { helper(); }\n"),
            file("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ];
        let g = graph_of(&files, &DepMap::new());
        assert_eq!(g.callees[idx(&g, "top")], vec![idx(&g, "helper")]);
    }

    #[test]
    fn dep_scoping_cuts_edges_to_non_dependencies() {
        let files = vec![
            file("crates/a/src/lib.rs", "pub fn top() { helper(); }\n"),
            file("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ];
        let manifests = vec![
            ("a".to_string(), "[dependencies]\nc = \"1\"\n".to_string()),
            ("b".to_string(), String::new()),
            ("c".to_string(), String::new()),
        ];
        let deps = dep_map_from_manifests(&manifests);
        let g = graph_of(&files, &deps);
        assert!(g.callees[idx(&g, "top")].is_empty(), "b is not a dep of a");
    }

    #[test]
    fn typed_calls_restrict_to_the_impl() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "pub struct P;\nimpl P {\n    pub fn new() -> P { P }\n}\npub struct Q;\nimpl Q {\n    pub fn new() -> Q { Q }\n}\npub fn go() { P::new(); }\n",
        )];
        let g = graph_of(&files, &DepMap::new());
        let go = idx(&g, "go");
        assert_eq!(g.callees[go].len(), 1);
        assert_eq!(g.nodes[g.callees[go][0]].item.qual, "P");
    }

    #[test]
    fn unqualified_method_calls_fan_out_to_all_impls() {
        let files = vec![
            file(
                "crates/a/src/lib.rs",
                "pub fn go(x: &X) { x.act(); }\npub struct A;\nimpl A { pub fn act(&self) {} }\n",
            ),
            file(
                "crates/b/src/lib.rs",
                "pub struct B;\nimpl B { pub fn act(&self) {} }\n",
            ),
        ];
        let g = graph_of(&files, &DepMap::new());
        assert_eq!(g.callees[idx(&g, "go")].len(), 2, "over-approximate");
    }

    #[test]
    fn module_qualified_calls_scope_to_the_file() {
        let files = vec![
            file("crates/a/src/lib.rs", "pub fn go() { util::run(); }\n"),
            file("crates/a/src/util.rs", "pub fn run() {}\n"),
            file("crates/a/src/other.rs", "pub fn run() {}\n"),
        ];
        let g = graph_of(&files, &DepMap::new());
        let go = idx(&g, "go");
        assert_eq!(g.callees[go].len(), 1);
        assert_eq!(g.nodes[g.callees[go][0]].path, "crates/a/src/util.rs");
    }

    #[test]
    fn hyphened_crate_names_match_underscored_paths() {
        let files = vec![
            file(
                "crates/a/src/lib.rs",
                "pub fn go() { traffic_sim::step_world(); }\n",
            ),
            file("crates/traffic-sim/src/lib.rs", "pub fn step_world() {}\n"),
        ];
        let g = graph_of(&files, &DepMap::new());
        assert_eq!(g.callees[idx(&g, "go")], vec![idx(&g, "step_world")]);
    }

    #[test]
    fn bin_like_files_are_roots_not_callees() {
        let files = vec![
            file(
                "crates/a/src/lib.rs",
                "pub fn helper() {}\npub fn go() { main(); }\n",
            ),
            file("crates/a/src/bin/tool.rs", "pub fn main() { helper(); }\n"),
        ];
        let g = graph_of(&files, &DepMap::new());
        let main_i = idx(&g, "main");
        assert!(g.nodes[main_i].bin_like);
        assert_eq!(g.callees[main_i], vec![idx(&g, "helper")]);
        assert!(g.callees[idx(&g, "go")].is_empty(), "no edges INTO bins");
    }

    #[test]
    fn reach_skips_and_reports_parents() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "pub fn root() { mid(); }\npub fn mid() { leaf(); }\npub fn leaf() {}\npub fn island() {}\n",
        )];
        let g = graph_of(&files, &DepMap::new());
        let (r, m, l, i) = (
            idx(&g, "root"),
            idx(&g, "mid"),
            idx(&g, "leaf"),
            idx(&g, "island"),
        );
        let parent = g.reach(&[r], &|_| false);
        assert_eq!(parent[r], Some(r));
        assert_eq!(parent[m], Some(r));
        assert_eq!(parent[l], Some(m));
        assert_eq!(parent[i], None);
        assert_eq!(g.chain(&parent, l), "a::root -> a::mid -> a::leaf");
        let cut = g.reach(&[r], &|n| n.item.name == "mid");
        assert_eq!(cut[l], None, "skip() prunes traversal");
    }

    #[test]
    fn dep_map_parses_workspace_syntax_and_closes_transitively() {
        let manifests = vec![
            (
                "serve".to_string(),
                "[package]\nname = \"serve\"\n[dependencies]\ntelemetry = { workspace = true }\nhead.workspace = true\n[dev-dependencies]\npar = { workspace = true }\n".to_string(),
            ),
            (
                "head".to_string(),
                "[dependencies]\nnn = { workspace = true }\ntraffic-sim = { workspace = true }\n".to_string(),
            ),
            ("nn".to_string(), "[dependencies]\ntelemetry = { workspace = true }\n".to_string()),
            ("telemetry".to_string(), String::new()),
            ("traffic-sim".to_string(), String::new()),
            ("par".to_string(), String::new()),
        ];
        let deps = dep_map_from_manifests(&manifests);
        let serve = deps.get("serve").expect("serve entry");
        for d in ["telemetry", "head", "par", "nn", "traffic_sim"] {
            assert!(serve.contains(d), "serve should transitively reach {d}");
        }
        assert!(!deps.get("nn").expect("nn").contains("head"));
    }
}
