//! A lightweight item parser: the bridge from one file's token stream to
//! the workspace call graph.
//!
//! [`extract`] walks a [`SourceFile`] once and produces a [`FileItems`]
//! summary: every `fn` item (with the `impl` type that owns it, when
//! any), the *call references* its body makes, and the marker sites the
//! cross-file passes care about — panic sites, direct-indexing sites,
//! nondeterminism sources, and references to `telemetry::keys` constants.
//!
//! There is no type inference and no real name resolution (the build
//! container cannot reach the registry for `syn`), so calls are matched
//! by name with whatever qualifier the call site spells:
//!
//! * `foo(..)`            → [`CallKind::Bare`] — free functions named `foo`
//! * `x.foo(..)`          → [`CallKind::Method`] — any `impl` fn named `foo`
//! * `self.foo(..)`       → method scoped to the enclosing `impl` type
//! * `Type::foo(..)`      → method scoped to `impl Type`
//! * `module::foo(..)`    → free fn scoped to that crate or module
//!
//! The resulting graph is deliberately **over-approximate**: an edge that
//! might exist is recorded, so reachability answers "provably cannot
//! reach" questions (the direction the determinism-taint and
//! serve-reachability rules need) at the cost of occasional
//! false-positive paths, which carry reason-bearing `lint:allow`s.
//! Turbofish call sites (`foo::<T>(..)`) are the one known blind spot.

use crate::lexer::TokKind;
use crate::registry::KeyRegistry;
use crate::source::SourceFile;

/// How a call site spells its target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)` — a free function.
    Bare,
    /// `x.foo(..)` — a method on some receiver.
    Method,
    /// `Qual::foo(..)` — qualified by a type or module path segment.
    Qualified,
}

impl CallKind {
    /// Stable single-letter tag used by the cache serialisation.
    pub fn tag(self) -> &'static str {
        match self {
            CallKind::Bare => "b",
            CallKind::Method => "m",
            CallKind::Qualified => "q",
        }
    }

    /// Inverse of [`CallKind::tag`].
    pub fn from_tag(tag: &str) -> Option<CallKind> {
        match tag {
            "b" => Some(CallKind::Bare),
            "m" => Some(CallKind::Method),
            "q" => Some(CallKind::Qualified),
            _ => None,
        }
    }
}

/// One call reference inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallRef {
    /// Spelling of the call site.
    pub kind: CallKind,
    /// Called function name (last path segment).
    pub name: String,
    /// Qualifier: the `impl` type for `self.`/`Self::`/`Type::` calls,
    /// the module/crate segment for `module::` calls, empty when the
    /// call carries no usable qualifier.
    pub qual: String,
}

/// One marker location inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What the marker is (`.unwrap()`, `HashMap`, `env::var`, ...).
    pub what: String,
}

/// One `fn` item and everything the workspace passes need to know about
/// its body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Owning `impl` type, empty for free functions.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the item sits in test-only code (or a tests/benches
    /// directory, which is fully masked).
    pub is_test: bool,
    /// Call references made by the body.
    pub calls: Vec<CallRef>,
    /// `unwrap`/`expect`/panic-macro sites.
    pub panic_sites: Vec<Site>,
    /// Direct slice/map indexing sites.
    pub index_sites: Vec<Site>,
    /// Nondeterminism sources (wall clock, OS entropy, env reads, hash
    /// collections, `thread::current`).
    pub source_sites: Vec<Site>,
    /// `telemetry::keys` constant names referenced by the body.
    pub key_refs: Vec<String>,
}

/// Per-file item summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileItems {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Nondeterminism-source markers outside any `fn` body (`use`
    /// declarations, struct fields holding hash collections). These taint
    /// every function of the file: without type inference, a field of
    /// hash-collection type may feed any method.
    pub file_sources: Vec<Site>,
    /// `telemetry::keys` constant names referenced outside any `fn` body
    /// (static tables and the like) — always treated as live.
    pub top_key_refs: Vec<String>,
}

/// Identifiers that look like calls but are control-flow or item keywords.
const NON_CALL_KEYWORDS: [&str; 24] = [
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "mut", "ref", "move",
    "as", "in", "where", "impl", "use", "pub", "mod", "struct", "enum", "trait", "type", "const",
];

/// Hash-ordered container types whose presence marks a potential
/// nondeterministic iteration.
const HASH_CONTAINERS: [&str; 3] = ["HashMap", "HashSet", "RandomState"];

/// What an open brace belongs to, tracked on a scope stack.
enum ScopeKind {
    /// `impl Type { ... }` — owns the type name.
    Impl(String),
    /// `fn name(..) { ... }` — owns the index into `FileItems::fns`.
    Fn(usize),
    /// Any other brace (mod, match, struct literal, block, ...).
    Other,
}

/// Extracts the item summary for one analysed file. `keys` supplies the
/// registered constant names for key-reference tracking.
pub fn extract(f: &SourceFile, keys: &KeyRegistry) -> FileItems {
    let toks = &f.toks;
    let mut items = FileItems::default();
    // Braces whose opening token index starts a known scope.
    let mut scope_openers: std::collections::BTreeMap<usize, ScopeKind> =
        std::collections::BTreeMap::new();
    let mut stack: Vec<ScopeKind> = Vec::new();
    let key_names: std::collections::BTreeSet<&str> =
        keys.consts().iter().map(|k| k.name.as_str()).collect();

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((type_name, open)) = impl_header(f, i) {
                // `impl Trait` in a signature position (`-> impl Iterator<..>`,
                // `x: impl Fn()`) scans forward to the same `{` the enclosing
                // fn already claimed; only a real `impl` block owns a fresh one.
                scope_openers
                    .entry(open)
                    .or_insert(ScopeKind::Impl(type_name));
            }
        } else if t.is_ident("fn") {
            if let Some(n) = toks.get(i + 1) {
                if n.kind == TokKind::Ident {
                    let qual = stack
                        .iter()
                        .rev()
                        .find_map(|s| match s {
                            ScopeKind::Impl(ty) => Some(ty.clone()),
                            _ => None,
                        })
                        .unwrap_or_default();
                    let item = FnItem {
                        name: n.text.clone(),
                        qual,
                        line: t.line,
                        is_test: f.is_test(i),
                        ..FnItem::default()
                    };
                    let idx = items.fns.len();
                    items.fns.push(item);
                    if let Some(open) = fn_body_open(f, i + 2) {
                        scope_openers.insert(open, ScopeKind::Fn(idx));
                    }
                }
            }
        }

        if t.is_punct("{") {
            stack.push(scope_openers.remove(&i).unwrap_or(ScopeKind::Other));
        } else if t.is_punct("}") {
            stack.pop();
        }

        let enclosing_fn = stack.iter().rev().find_map(|s| match s {
            ScopeKind::Fn(idx) => Some(*idx),
            _ => None,
        });
        let enclosing_impl = stack.iter().rev().find_map(|s| match s {
            ScopeKind::Impl(ty) => Some(ty.as_str()),
            _ => None,
        });
        scan_token(f, i, enclosing_fn, enclosing_impl, &key_names, &mut items);
        i += 1;
    }

    for fun in &mut items.fns {
        fun.key_refs.sort_unstable();
        fun.key_refs.dedup();
    }
    items.top_key_refs.sort_unstable();
    items.top_key_refs.dedup();
    items
}

/// Parses an `impl` header starting at token `i` (the `impl` keyword).
/// Returns the implemented type name and the token index of the body `{`.
/// Handles `impl Type`, `impl<G> Type<G>`, `impl Trait for Type` and
/// multi-segment paths (the last segment names the type).
fn impl_header(f: &SourceFile, i: usize) -> Option<(String, usize)> {
    let toks = &f.toks;
    let mut j = i + 1;
    // Skip the generic parameter list directly after `impl`.
    if matches!(toks.get(j), Some(t) if t.is_punct("<")) {
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("<") || t.is_punct("<<") {
                depth += if t.text == "<<" { 2 } else { 1 };
            } else if t.is_punct(">") || t.is_punct(">>") {
                depth -= if t.text == ">>" { 2 } else { 1 };
                if depth <= 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Scan to the body `{`, remembering the last identifier seen at angle
    // depth zero, both overall and after a `for` (trait impls name the
    // implementing type after `for`).
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" if angle <= 0 => {
                    let name = if saw_for { after_for } else { last_ident };
                    return name.map(|n| (n, j));
                }
                "<" | "<<" => angle += if t.text == "<<" { 2 } else { 1 },
                ">" | ">>" => angle -= if t.text == ">>" { 2 } else { 1 },
                ";" if angle <= 0 => return None,
                _ => {}
            },
            TokKind::Ident if angle <= 0 => {
                if t.text == "for" {
                    saw_for = true;
                } else if t.text != "where" && t.text != "dyn" {
                    if saw_for {
                        after_for = Some(t.text.clone());
                    } else {
                        last_ident = Some(t.text.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Finds the token index of the `{` opening a fn body, scanning from just
/// after the fn name. Returns `None` for bodiless trait declarations.
fn fn_body_open(f: &SourceFile, from: usize) -> Option<usize> {
    let toks = &f.toks;
    let mut depth = 0i32;
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(j),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Records whatever marker or call reference token `i` contributes.
fn scan_token(
    f: &SourceFile,
    i: usize,
    enclosing_fn: Option<usize>,
    enclosing_impl: Option<&str>,
    key_names: &std::collections::BTreeSet<&str>,
    items: &mut FileItems,
) {
    let toks = &f.toks;
    let t = &toks[i];

    // Key-constant references are tracked everywhere (fn bodies and
    // top-level tables alike).
    if t.kind == TokKind::Ident && key_names.contains(t.text.as_str()) {
        let is_decl = f.path.ends_with("telemetry/src/keys.rs");
        if !is_decl {
            match enclosing_fn {
                Some(idx) => items.fns[idx].key_refs.push(t.text.clone()),
                None => items.top_key_refs.push(t.text.clone()),
            }
        }
    }

    // Hash-ordered containers mark a nondeterminism source wherever they
    // appear: in a body (local use) or at file scope (fields, imports).
    if t.kind == TokKind::Ident && HASH_CONTAINERS.contains(&t.text.as_str()) && !f.is_test(i) {
        let site = Site {
            line: t.line,
            col: t.col,
            what: t.text.clone(),
        };
        match enclosing_fn {
            Some(idx) => items.fns[idx].source_sites.push(site),
            None => items.file_sources.push(site),
        }
    }

    let Some(idx) = enclosing_fn else { return };

    // Panic sites, mirroring the per-file `panic` pass.
    if t.kind == TokKind::Ident {
        let method_call = |name: &str| {
            t.text == name
                && i > 0
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
        };
        if method_call("unwrap") || method_call("expect") {
            items.fns[idx].panic_sites.push(Site {
                line: t.line,
                col: t.col,
                what: format!(".{}()", t.text),
            });
        }
        let is_macro = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"));
        if is_macro {
            items.fns[idx].panic_sites.push(Site {
                line: t.line,
                col: t.col,
                what: format!("{}!", t.text),
            });
        }
    }

    // Direct-indexing sites.
    if t.is_punct("[") && f.bracket_is_index(i) {
        items.fns[idx].index_sites.push(Site {
            line: t.line,
            col: t.col,
            what: String::new(),
        });
    }

    // Remaining nondeterminism sources.
    if t.kind == TokKind::Ident && !f.is_test(i) {
        let path_to = |seg: &str| {
            matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
                && matches!(toks.get(i + 2), Some(n) if n.is_ident(seg))
        };
        let source = if (t.text == "Instant" || t.text == "SystemTime") && path_to("now") {
            Some(format!("{}::now", t.text))
        } else if t.text == "thread" && path_to("current") {
            Some("thread::current".to_string())
        } else if t.text == "env"
            && (path_to("var") || path_to("vars") || path_to("var_os") || path_to("vars_os"))
        {
            Some(format!("env::{}", toks[i + 2].text))
        } else if t.text == "thread_rng" || t.text == "from_entropy" {
            Some(t.text.clone())
        } else {
            None
        };
        if let Some(what) = source {
            items.fns[idx].source_sites.push(Site {
                line: t.line,
                col: t.col,
                what,
            });
        }
    }

    // Call references.
    if t.kind == TokKind::Ident
        && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
        && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
    {
        let prev = if i > 0 { Some(&toks[i - 1]) } else { None };
        if matches!(prev, Some(p) if p.is_ident("fn")) {
            return; // the definition itself
        }
        let call = match prev {
            Some(p) if p.is_punct(".") => {
                // `.unwrap()` / `.expect()` are std combinators already
                // recorded as panic sites above; resolving them as workspace
                // method calls would only pollute the call graph.
                if t.text == "unwrap" || t.text == "expect" {
                    return;
                }
                // `recv.name(..)`; `self.name(..)` scopes to the impl type.
                let receiver_is_self = i >= 2
                    && toks[i - 2].is_ident("self")
                    && !(i >= 3 && toks[i - 3].is_punct("."));
                let qual = if receiver_is_self {
                    enclosing_impl.unwrap_or_default().to_string()
                } else {
                    String::new()
                };
                CallRef {
                    kind: CallKind::Method,
                    name: t.text.clone(),
                    qual,
                }
            }
            Some(p) if p.is_punct("::") => {
                let qual_tok = if i >= 2 { Some(&toks[i - 2]) } else { None };
                let qual = match qual_tok {
                    Some(q) if q.kind == TokKind::Ident => match q.text.as_str() {
                        "self" | "super" | "crate" => String::new(),
                        "Self" => enclosing_impl.unwrap_or_default().to_string(),
                        other => other.to_string(),
                    },
                    _ => String::new(),
                };
                CallRef {
                    kind: CallKind::Qualified,
                    name: t.text.clone(),
                    qual,
                }
            }
            _ => CallRef {
                kind: CallKind::Bare,
                name: t.text.clone(),
                qual: String::new(),
            },
        };
        items.fns[idx].calls.push(call);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract_src(path: &str, src: &str) -> FileItems {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let f = SourceFile::analyse(path.into(), crate_name, src);
        let keys = KeyRegistry::parse("pub const GOOD: &str = \"sim.good\";\n");
        extract(&f, &keys)
    }

    #[test]
    fn free_and_impl_fns_are_extracted_with_quals() {
        let items = extract_src(
            "crates/nn/src/a.rs",
            "pub fn free() {}\nimpl Widget {\n    pub fn method(&self) {}\n}\nimpl Display for Gadget {\n    fn fmt(&self) {}\n}\n",
        );
        let sigs: Vec<(String, String)> = items
            .fns
            .iter()
            .map(|f| (f.qual.clone(), f.name.clone()))
            .collect();
        assert_eq!(
            sigs,
            vec![
                (String::new(), "free".to_string()),
                ("Widget".to_string(), "method".to_string()),
                ("Gadget".to_string(), "fmt".to_string()),
            ]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let items = extract_src(
            "crates/nn/src/a.rs",
            "impl<'a, T: Clone> Holder<'a, T> {\n    fn get(&self) {}\n}\n",
        );
        assert_eq!(items.fns[0].qual, "Holder");
    }

    #[test]
    fn call_kinds_are_classified() {
        let items = extract_src(
            "crates/nn/src/a.rs",
            "impl W {\n    fn go(&self) {\n        helper();\n        x.update(1);\n        self.local();\n        Pool::new(2);\n        decision::pick();\n        Self::stat();\n    }\n}\n",
        );
        let calls = &items.fns[0].calls;
        let find = |name: &str| calls.iter().find(|c| c.name == name).expect(name);
        assert_eq!(find("helper").kind, CallKind::Bare);
        assert_eq!(find("update").kind, CallKind::Method);
        assert_eq!(find("update").qual, "");
        assert_eq!(find("local").qual, "W", "self call scopes to the impl");
        assert_eq!(find("new").qual, "Pool");
        assert_eq!(find("pick").qual, "decision");
        assert_eq!(find("stat").qual, "W", "Self:: scopes to the impl");
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let items = extract_src(
            "crates/nn/src/a.rs",
            "fn f(v: &[u8]) {\n    if (a) {}\n    match (b) { _ => {} }\n    format!(\"x\");\n    while (c) {}\n}\n",
        );
        assert!(items.fns[0].calls.is_empty(), "{:?}", items.fns[0].calls);
    }

    #[test]
    fn markers_are_attributed_to_the_enclosing_fn() {
        let items = extract_src(
            "crates/head/src/a.rs",
            "fn risky(v: &[f64], x: Option<u32>) -> f64 {\n    let a = v[0];\n    let b = x.unwrap();\n    panic!(\"no\");\n    let t = Instant::now();\n    let e = std::env::var(\"X\");\n    a\n}\n",
        );
        let f0 = &items.fns[0];
        assert_eq!(f0.index_sites.len(), 1);
        let panics: Vec<&str> = f0.panic_sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(panics, vec![".unwrap()", "panic!"]);
        let sources: Vec<&str> = f0.source_sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(sources, vec!["Instant::now", "env::var"]);
    }

    #[test]
    fn hash_containers_at_file_scope_are_recorded() {
        let items = extract_src(
            "crates/nn/src/a.rs",
            "use std::collections::HashMap;\npub struct Pool {\n    free: HashMap<usize, Vec<f32>>,\n}\nfn body() {\n    let m = HashMap::new();\n}\n",
        );
        assert_eq!(items.file_sources.len(), 2, "use + field");
        assert_eq!(items.fns[0].source_sites.len(), 1, "local construction");
    }

    #[test]
    fn test_code_markers_are_flagged_via_fn_is_test() {
        let items = extract_src(
            "crates/nn/src/a.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.unwrap();\n    }\n}\nfn live() {}\n",
        );
        let t = items.fns.iter().find(|f| f.name == "t").expect("test fn");
        assert!(t.is_test);
        assert!(!items.fns.iter().find(|f| f.name == "live").unwrap().is_test);
    }

    #[test]
    fn key_refs_split_between_fns_and_top_level() {
        let items = extract_src(
            "crates/head/src/a.rs",
            "static TABLE: &[&str] = &[GOOD];\nfn emits() {\n    counter_add(GOOD, 1);\n}\n",
        );
        assert_eq!(items.top_key_refs, vec!["GOOD".to_string()]);
        assert_eq!(items.fns[0].key_refs, vec!["GOOD".to_string()]);
    }

    #[test]
    fn bodiless_trait_fns_get_no_scope() {
        let items = extract_src(
            "crates/nn/src/a.rs",
            "trait T {\n    fn decl(&self);\n    fn with_default(&self) {\n        helper();\n    }\n}\n",
        );
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns[0].calls.is_empty());
        assert_eq!(items.fns[1].calls.len(), 1, "default body is scanned");
        assert_eq!(items.fns[1].qual, "", "trait scope is not an impl type");
    }
}
#[test]
fn impl_trait_in_signature_keeps_fn_scope() {
    use crate::items::extract;
    use crate::registry::KeyRegistry;
    use crate::source::SourceFile;
    let f = SourceFile::analyse(
        "crates/nn/src/a.rs".into(),
        "nn".into(),
        "pub fn frames() -> impl Iterator<Item = u32> {\n    helper();\n    x.unwrap();\n}\n",
    );
    let items = extract(&f, &KeyRegistry::parse(""));
    assert_eq!(items.fns.len(), 1);
    assert_eq!(
        items.fns[0].calls.len(),
        1,
        "calls: {:?}",
        items.fns[0].calls
    );
    assert_eq!(
        items.fns[0].panic_sites.len(),
        1,
        "panics: {:?}",
        items.fns[0].panic_sites
    );
}
