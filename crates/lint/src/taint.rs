//! Workspace-level passes: the rules that need the call graph.
//!
//! Three rule families ride on [`crate::callgraph::Graph`]:
//!
//! * **determinism-taint** — nondeterminism sources (wall clock, OS
//!   entropy, env reads, hash-ordered collections, `thread::current`)
//!   must not be reachable from the checksum-gated paths: anything in
//!   `par`, the `nn` matmul/backward kernels, `head::evaluate_agent*`
//!   plus the fleet driver's `Fleet::step`, and `traffic_sim`'s sharded
//!   stepping (`step`, the per-shard `step_segment`, and the
//!   cross-segment `apply_migrations` merge). Those paths promise
//!   byte-identical parallel/serial output; a source anywhere in their
//!   call cone breaks the promise silently.
//! * **serve-reachability** — panic sites reachable from `crates/serve`
//!   are errors (the daemon's crash-only, always-answer contract), and
//!   fns with direct-indexing sites reachable from serve get one
//!   aggregated warning at their signature line.
//! * **telemetry-liveness** — a key registered in `telemetry::keys` whose
//!   only references sit in code unreachable from every root (test fns,
//!   binaries, examples) can never be emitted in a live run; the inverse
//!   of the per-reference `telemetry-keys` check.
//!
//! The graph is over-approximate, so "unreachable" findings are sound and
//! "reachable" findings may occasionally be false paths — those carry
//! reason-bearing `lint:allow` directives at the flagged line.

use crate::callgraph::{is_bin_like, normalise, FileUnit, Graph, Node};
use crate::engine::FileFacts;
use crate::passes::{rule, Context, Diagnostic, Severity};

/// Runs every workspace pass, appending diagnostics to `out`.
pub fn run_workspace_passes(facts: &[FileFacts], ctx: &Context, out: &mut Vec<Diagnostic>) {
    check_unused_keys(facts, ctx, out);
    let units: Vec<FileUnit> = facts
        .iter()
        .map(|f| FileUnit {
            path: &f.path,
            crate_name: &f.crate_name,
            items: &f.items,
        })
        .collect();
    let graph = Graph::build(&units, &ctx.deps);
    pass_determinism_taint(facts, &graph, out);
    pass_serve_reachability(&graph, out);
    pass_telemetry_liveness(facts, &graph, ctx, out);
}

fn diag_at(
    rule_name: &'static str,
    severity: Severity,
    file: &str,
    line: u32,
    col: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule: rule_name,
        severity,
        file: file.to_string(),
        line,
        col,
        message,
    }
}

fn error_sev(rule_name: &str) -> Severity {
    rule(rule_name).map_or(Severity::Error, |r| r.severity)
}

/// True for fns on a checksum-gated path: every non-test fn in `par`, the
/// `nn` matmul/outer kernels and tape replay, `head`'s parallel evaluator
/// and fleet step, and the simulator's sharded stepping (the step driver,
/// the per-shard segment kernel, and the migration merge).
fn is_sink(n: &Node) -> bool {
    if n.item.is_test || n.bin_like {
        return false;
    }
    let name = n.item.name.as_str();
    match normalise(n.crate_name).as_str() {
        "par" => true,
        "nn" => name.starts_with("matmul") || name.starts_with("outer") || name == "backward",
        "head" => name.starts_with("evaluate_agent") || (name == "step" && n.item.qual == "Fleet"),
        "traffic_sim" => name == "step" || name == "step_segment" || name == "apply_migrations",
        _ => false,
    }
}

/// determinism-taint: walk the call cone *below* the checksum-gated sinks
/// and flag every nondeterminism source inside it. `telemetry` is exempt
/// (sanctioned wall-clock for reporting), as are bins/examples/tests
/// (excluded from traversal entirely).
fn pass_determinism_taint(facts: &[FileFacts], graph: &Graph, out: &mut Vec<Diagnostic>) {
    let sinks: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| is_sink(&graph.nodes[i]))
        .collect();
    if sinks.is_empty() {
        return;
    }
    let parent = graph.reach(&sinks, &|n| n.item.is_test || n.bin_like);
    let sev = error_sev("determinism-taint");

    // Sources inside reached fn bodies.
    for i in 0..graph.nodes.len() {
        if parent[i].is_none() {
            continue;
        }
        let n = &graph.nodes[i];
        if normalise(n.crate_name) == "telemetry" {
            continue;
        }
        for site in &n.item.source_sites {
            out.push(diag_at(
                "determinism-taint",
                sev,
                n.path,
                site.line,
                site.col,
                format!(
                    "`{}` is a nondeterminism source inside `{}`, which sits on the \
                     checksum-gated path {}; the parallel/serial byte-identity \
                     contract cannot survive it — thread a seeded stream or an \
                     ordered collection through instead",
                    site.what,
                    graph.symbol(i),
                    graph.chain(&parent, i)
                ),
            ));
        }
    }

    // File-scope sources (hash-collection fields and imports): without
    // type inference any method of the file may iterate the field, so the
    // file taints as soon as one of its fns is reached.
    for (file_idx, f) in facts.iter().enumerate() {
        if f.items.file_sources.is_empty()
            || normalise(&f.crate_name) == "telemetry"
            || is_bin_like(&f.path)
        {
            continue;
        }
        let reached = (0..graph.nodes.len())
            .find(|&i| graph.nodes[i].file_idx == file_idx && parent[i].is_some());
        let Some(via) = reached else { continue };
        for site in &f.items.file_sources {
            out.push(diag_at(
                "determinism-taint",
                sev,
                &f.path,
                site.line,
                site.col,
                format!(
                    "`{}` at file scope: its iteration order can leak into `{}`, \
                     reachable from the checksum-gated path {}; use an ordered \
                     collection (BTreeMap/BTreeSet/Vec)",
                    site.what,
                    graph.symbol(via),
                    graph.chain(&parent, via)
                ),
            ));
        }
    }
}

/// serve-reachability: the serving daemon is crash-only — a panic
/// anywhere in the request path's call cone kills the always-answer
/// guarantee. Panic sites reachable from `crates/serve` are errors;
/// direct-indexing sites aggregate to one warning per reachable fn
/// (suppressible at the fn's signature line).
fn pass_serve_reachability(graph: &Graph, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            normalise(n.crate_name) == "serve" && !n.item.is_test
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    let parent = graph.reach(&roots, &|n| {
        n.item.is_test || (n.bin_like && normalise(n.crate_name) != "serve")
    });
    let sev = error_sev("serve-reachability");

    for i in 0..graph.nodes.len() {
        if parent[i].is_none() {
            continue;
        }
        let n = &graph.nodes[i];
        for site in &n.item.panic_sites {
            out.push(diag_at(
                "serve-reachability",
                sev,
                n.path,
                site.line,
                site.col,
                format!(
                    "`{}` in `{}` is reachable from the serve request path ({}); a \
                     panic here kills the always-answer daemon — degrade to an error \
                     response instead",
                    site.what,
                    graph.symbol(i),
                    graph.chain(&parent, i)
                ),
            ));
        }
        if !n.item.index_sites.is_empty() {
            out.push(diag_at(
                "serve-reachability",
                Severity::Warn,
                n.path,
                n.item.line,
                1,
                format!(
                    "`{}` has {} direct-indexing site(s) and is reachable from the \
                     serve request path ({}); an out-of-bounds panic here kills the \
                     daemon — prefer get()",
                    graph.symbol(i),
                    n.item.index_sites.len(),
                    graph.chain(&parent, i)
                ),
            ));
        }
    }
}

/// telemetry-liveness: a registered key referenced *only* from fns that no
/// root (test, binary, example, `main`) can reach is dead weight — the
/// metric can never fire in any real run. Reported at the key's
/// definition line. Keys with no references at all are left to the
/// per-reference `telemetry-keys` check.
fn pass_telemetry_liveness(
    facts: &[FileFacts],
    graph: &Graph,
    ctx: &Context,
    out: &mut Vec<Diagnostic>,
) {
    let Some(keys_file) = facts
        .iter()
        .find(|f| f.path.ends_with("telemetry/src/keys.rs"))
    else {
        return;
    };
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.item.is_test || n.bin_like || n.item.name == "main"
        })
        .collect();
    let parent = graph.reach(&roots, &|_| false);
    let sev = error_sev("telemetry-liveness");

    for k in ctx.keys.consts() {
        let mut referenced: Vec<usize> = Vec::new();
        let mut live = facts
            .iter()
            .any(|f| f.items.top_key_refs.iter().any(|r| r == &k.name));
        for (i, reached) in parent.iter().enumerate() {
            let n = &graph.nodes[i];
            if n.item.key_refs.iter().any(|r| r == &k.name) {
                referenced.push(i);
                live |= reached.is_some();
            }
        }
        if referenced.is_empty() || live {
            continue;
        }
        let witness = referenced[0];
        let w = &graph.nodes[witness];
        out.push(diag_at(
            "telemetry-liveness",
            sev,
            &keys_file.path,
            k.line,
            1,
            format!(
                "telemetry key `{}` (\"{}\") is only referenced from dead code \
                 (e.g. `{}` at {}:{}, unreachable from any test, binary or \
                 example); delete the key or wire the code path in",
                k.name,
                k.value,
                graph.symbol(witness),
                w.path,
                w.item.line
            ),
        ));
    }
}

/// Every registered key constant must be referenced somewhere outside
/// keys.rs. Runs only when keys.rs itself was walked.
pub fn check_unused_keys(facts: &[FileFacts], ctx: &Context, out: &mut Vec<Diagnostic>) {
    let Some(keys_file) = facts
        .iter()
        .find(|f| f.path.ends_with("telemetry/src/keys.rs"))
    else {
        return;
    };
    for k in ctx.keys.consts() {
        let used = facts.iter().any(|f| {
            f.items.top_key_refs.iter().any(|r| r == &k.name)
                || f.items
                    .fns
                    .iter()
                    .any(|fun| fun.key_refs.iter().any(|r| r == &k.name))
        });
        if !used {
            out.push(Diagnostic {
                rule: "telemetry-keys",
                severity: error_sev("telemetry-keys"),
                file: keys_file.path.clone(),
                line: k.line,
                col: 1,
                message: format!(
                    "registered telemetry key `{}` (\"{}\") has no call site; remove it \
                     or instrument the code path",
                    k.name, k.value
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyse_source;
    use crate::registry::KeyRegistry;

    fn keys() -> KeyRegistry {
        KeyRegistry::parse(
            "pub const USED: &str = \"a.b\";\npub const DEAD: &str = \"c.d\";\npub const GONE: &str = \"e.f\";\n",
        )
    }

    fn workspace(files: &[(&str, &str)]) -> (Vec<FileFacts>, Context) {
        let ctx = Context::new(keys());
        let facts = files
            .iter()
            .map(|(path, src)| {
                let crate_name = path
                    .strip_prefix("crates/")
                    .and_then(|r| r.split('/').next())
                    .unwrap_or("")
                    .to_string();
                analyse_source(path.to_string(), crate_name, src, &ctx)
            })
            .collect();
        (facts, ctx)
    }

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let (facts, ctx) = workspace(files);
        let mut out = Vec::new();
        run_workspace_passes(&facts, &ctx, &mut out);
        out
    }

    fn by_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
        diags.iter().filter(|d| d.rule == rule).collect()
    }

    #[test]
    fn taint_flags_env_read_two_crates_below_a_sink() {
        let d = run(&[
            (
                "crates/traffic-sim/src/sim.rs",
                "impl Sim {\n    pub fn step(&mut self) { decision::jitter(); }\n}\n",
            ),
            (
                "crates/decision/src/lib.rs",
                "pub fn jitter() -> String {\n    std::env::var(\"JITTER\").unwrap_or_default()\n}\n",
            ),
        ]);
        let taint = by_rule(&d, "determinism-taint");
        assert_eq!(taint.len(), 1, "{d:?}");
        assert_eq!(taint[0].file, "crates/decision/src/lib.rs");
        assert!(taint[0].message.contains("env::var"));
        assert!(taint[0].message.contains("traffic_sim::Sim::step"));
    }

    #[test]
    fn taint_sinks_cover_fleet_step_but_not_other_head_steps() {
        let d = run(&[
            (
                "crates/head/src/fleet.rs",
                "impl Fleet {\n    pub fn step(&mut self) { decision::jitter(); }\n}\n",
            ),
            (
                "crates/head/src/env.rs",
                "impl HighwayEnv {\n    pub fn step(&mut self) { decision::other_jitter(); }\n}\n",
            ),
            (
                "crates/decision/src/lib.rs",
                "pub fn jitter() -> String {\n    std::env::var(\"J\").unwrap_or_default()\n}\npub fn other_jitter() -> String {\n    std::env::var(\"K\").unwrap_or_default()\n}\n",
            ),
        ]);
        let taint = by_rule(&d, "determinism-taint");
        assert_eq!(taint.len(), 1, "only Fleet::step is a sink: {d:?}");
        assert!(taint[0].message.contains("head::Fleet::step"));
    }

    #[test]
    fn taint_sinks_cover_shard_kernel_and_migration_merge() {
        let d = run(&[
            (
                "crates/traffic-sim/src/sim.rs",
                "pub fn step_segment(s: &mut Seg) { decision::a(); }\nimpl Simulation {\n    fn apply_migrations(&mut self) { decision::b(); }\n}\n",
            ),
            (
                "crates/decision/src/lib.rs",
                "pub fn a() -> String {\n    std::env::var(\"A\").unwrap_or_default()\n}\npub fn b() -> String {\n    std::env::var(\"B\").unwrap_or_default()\n}\n",
            ),
        ]);
        let taint = by_rule(&d, "determinism-taint");
        assert_eq!(taint.len(), 2, "both sharded-step fns are sinks: {d:?}");
    }

    #[test]
    fn taint_ignores_sources_outside_the_sink_cone() {
        let d = run(&[
            (
                "crates/traffic-sim/src/sim.rs",
                "impl Sim {\n    pub fn step(&mut self) {}\n}\n",
            ),
            (
                "crates/decision/src/lib.rs",
                "pub fn jitter() -> String {\n    std::env::var(\"JITTER\").unwrap_or_default()\n}\n",
            ),
        ]);
        assert!(by_rule(&d, "determinism-taint").is_empty());
    }

    #[test]
    fn taint_flags_file_scope_hash_fields_once_reached() {
        let d = run(&[
            (
                "crates/nn/src/graph.rs",
                "impl Graph {\n    pub fn backward(&mut self) { self.pool.take(4); }\n}\n",
            ),
            (
                "crates/nn/src/pool.rs",
                "use std::collections::HashMap;\npub struct BufferPool {\n    free: HashMap<usize, Vec<f32>>,\n}\nimpl BufferPool {\n    pub fn take(&mut self, n: usize) -> Vec<f32> { Vec::new() }\n}\n",
            ),
        ]);
        let taint = by_rule(&d, "determinism-taint");
        assert_eq!(taint.len(), 2, "use + field: {d:?}");
        assert!(taint.iter().all(|t| t.file == "crates/nn/src/pool.rs"));
        assert!(taint[0].message.contains("file scope"));
    }

    #[test]
    fn taint_exempts_telemetry_and_test_code() {
        let d = run(&[
            (
                "crates/par/src/pool.rs",
                "pub fn try_map() { telemetry::stamp(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x = Instant::now(); }\n}\n",
            ),
            (
                "crates/telemetry/src/clock.rs",
                "pub fn stamp() -> u64 { let t = Instant::now(); 0 }\n",
            ),
        ]);
        assert!(by_rule(&d, "determinism-taint").is_empty(), "{d:?}");
    }

    #[test]
    fn serve_reachability_flags_unwrap_across_crates() {
        let d = run(&[
            (
                "crates/serve/src/service.rs",
                "impl Service {\n    pub fn handle(&mut self) { decision::risky(); }\n}\n",
            ),
            (
                "crates/decision/src/lib.rs",
                "pub fn risky() -> u32 {\n    maybe().unwrap()\n}\n",
            ),
        ]);
        let hits = by_rule(&d, "serve-reachability");
        assert_eq!(hits.len(), 1, "{d:?}");
        assert_eq!(hits[0].severity, Severity::Error);
        assert_eq!(hits[0].file, "crates/decision/src/lib.rs");
        assert!(hits[0].message.contains(".unwrap()"));
        assert!(hits[0].message.contains("serve::Service::handle"));
    }

    #[test]
    fn serve_reachability_aggregates_indexing_to_one_warning() {
        let d = run(&[
            (
                "crates/serve/src/service.rs",
                "pub fn handle() { decision::pick(); }\n",
            ),
            (
                "crates/decision/src/lib.rs",
                "pub fn pick() -> f64 {\n    let a = v[0];\n    let b = v[1];\n    a + b\n}\n",
            ),
        ]);
        let hits = by_rule(&d, "serve-reachability");
        assert_eq!(hits.len(), 1, "aggregated: {d:?}");
        assert_eq!(hits[0].severity, Severity::Warn);
        assert_eq!(hits[0].line, 1, "reported at the fn signature");
        assert!(hits[0].message.contains("2 direct-indexing site(s)"));
    }

    #[test]
    fn serve_reachability_needs_a_serve_root() {
        let d = run(&[(
            "crates/decision/src/lib.rs",
            "pub fn risky() -> u32 { maybe().unwrap() }\n",
        )]);
        assert!(by_rule(&d, "serve-reachability").is_empty());
    }

    #[test]
    fn liveness_flags_keys_referenced_only_from_dead_code() {
        let d = run(&[
            (
                "crates/telemetry/src/keys.rs",
                "pub const USED: &str = \"a.b\";\npub const DEAD: &str = \"c.d\";\npub const GONE: &str = \"e.f\";\n",
            ),
            (
                "crates/head/src/metrics.rs",
                // `emits` is wired to a test; `zombie` is called by nothing.
                "pub fn emits() { counter_add(keys::USED, 1); }\npub fn zombie() { counter_add(keys::DEAD, 1); }\npub fn gone_ref() { let _ = keys::GONE; }\npub fn also_dead() { zombie_helper(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { emits(); gone_ref(); }\n}\n",
            ),
        ]);
        let live = by_rule(&d, "telemetry-liveness");
        assert_eq!(live.len(), 1, "{d:?}");
        assert!(live[0].message.contains("`DEAD`"));
        assert_eq!(live[0].file, "crates/telemetry/src/keys.rs");
        assert_eq!(live[0].line, 2);
        assert!(live[0].message.contains("head::zombie"));
    }

    #[test]
    fn liveness_counts_top_level_tables_and_bins_as_live() {
        let d = run(&[
            (
                "crates/telemetry/src/keys.rs",
                "pub const USED: &str = \"a.b\";\npub const DEAD: &str = \"c.d\";\npub const GONE: &str = \"e.f\";\n",
            ),
            (
                "crates/head/src/metrics.rs",
                "pub static TABLE: &[&str] = &[keys::USED];\npub fn from_bin() { counter_add(keys::DEAD, 1); }\n",
            ),
            (
                "crates/bench/src/bin/tool.rs",
                "fn main() { from_bin(); let _ = keys::GONE; }\n",
            ),
        ]);
        assert!(by_rule(&d, "telemetry-liveness").is_empty(), "{d:?}");
    }

    #[test]
    fn unused_keys_reported_at_their_definition() {
        let (facts, ctx) = workspace(&[
            (
                "crates/telemetry/src/keys.rs",
                "pub const USED: &str = \"a.b\";\npub const DEAD: &str = \"c.d\";\n",
            ),
            (
                "crates/head/src/a.rs",
                "fn f() { counter_add(keys::USED, 1); }",
            ),
        ]);
        let mut out = Vec::new();
        check_unused_keys(&facts, &ctx, &mut out);
        let dead: Vec<&Diagnostic> = out
            .iter()
            .filter(|d| d.message.contains("has no call site"))
            .collect();
        assert_eq!(dead.len(), 2, "DEAD and GONE: {out:?}");
        assert!(dead[0].message.contains("DEAD"));
        assert_eq!(dead[0].line, 2);
    }
}
