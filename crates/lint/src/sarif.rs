//! CI-native report formats: SARIF 2.1.0 and GitHub workflow commands.
//!
//! SARIF is the interchange format GitHub's code-scanning UI ingests, so
//! archiving `lint_report.sarif` from CI turns every headlint finding
//! into an inline PR annotation. The emitted document is the minimal
//! valid subset: one run, the rule table as `tool.driver.rules`, one
//! `result` per diagnostic with a physical location.
//!
//! The GitHub mode prints `::error`/`::warning` workflow commands
//! directly, for jobs that want annotations without the code-scanning
//! upload round-trip.

use telemetry::Json;

use crate::engine::Report;
use crate::passes::{Severity, RULES};

/// SARIF severity level for a diagnostic severity.
fn level(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warn => "warning",
    }
}

/// Renders the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> Json {
    let rules: Vec<Json> = RULES
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", Json::from(r.name)),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::from(r.summary))]),
                ),
                (
                    "defaultConfiguration",
                    Json::obj(vec![("level", Json::from(level(r.severity)))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Json> = report
        .diags
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("ruleId", Json::from(d.rule)),
                ("level", Json::from(level(d.severity))),
                (
                    "message",
                    Json::obj(vec![("text", Json::from(d.message.as_str()))]),
                ),
                (
                    "locations",
                    Json::Arr(vec![Json::obj(vec![(
                        "physicalLocation",
                        Json::obj(vec![
                            (
                                "artifactLocation",
                                Json::obj(vec![("uri", Json::from(d.file.as_str()))]),
                            ),
                            (
                                "region",
                                Json::obj(vec![
                                    ("startLine", Json::from(u64::from(d.line))),
                                    ("startColumn", Json::from(u64::from(d.col))),
                                ]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "$schema",
            Json::from("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", Json::from("2.1.0")),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                (
                    "tool",
                    Json::obj(vec![(
                        "driver",
                        Json::obj(vec![
                            ("name", Json::from("headlint")),
                            ("informationUri", Json::from("README.md#static-analysis")),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
}

/// Renders the report as GitHub workflow commands, one annotation per
/// diagnostic. Messages are single-line by construction, which is what
/// the command grammar requires.
pub fn github_annotations(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diags {
        let cmd = match d.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
        };
        out.push_str(&format!(
            "::{cmd} file={},line={},col={},title=headlint({})::{}\n",
            d.file, d.line, d.col, d.rule, d.message
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::Diagnostic;

    fn report() -> Report {
        Report {
            files: 2,
            cache_hits: 0,
            cache_misses: 2,
            diags: vec![
                Diagnostic {
                    rule: "panic",
                    severity: Severity::Error,
                    file: "crates/nn/src/a.rs".to_string(),
                    line: 3,
                    col: 9,
                    message: "`.unwrap()` panics on the error path".to_string(),
                },
                Diagnostic {
                    rule: "index-panic",
                    severity: Severity::Warn,
                    file: "crates/nn/src/b.rs".to_string(),
                    line: 7,
                    col: 1,
                    message: "direct indexing panics when out of bounds".to_string(),
                },
            ],
        }
    }

    #[test]
    fn sarif_document_shape() {
        let doc = to_sarif(&report());
        assert_eq!(
            doc.get("version").and_then(Json::as_str),
            Some("2.1.0"),
            "{doc:?}"
        );
        let Some(Json::Arr(runs)) = doc.get("runs") else {
            panic!("runs array");
        };
        assert_eq!(runs.len(), 1);
        let Some(Json::Arr(results)) = runs[0].get("results") else {
            panic!("results array");
        };
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("panic")
        );
        assert_eq!(
            results[1].get("level").and_then(Json::as_str),
            Some("warning")
        );
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(driver.get("name").and_then(Json::as_str), Some("headlint"));
        let Some(Json::Arr(rules)) = driver.get("rules") else {
            panic!("rules array");
        };
        assert_eq!(rules.len(), RULES.len(), "every rule is described");
        // The document must round-trip through the strict parser.
        let text = to_sarif(&report()).to_string();
        assert_eq!(Json::parse(&text).expect("valid"), to_sarif(&report()));
    }

    #[test]
    fn sarif_locations_carry_line_and_column() {
        let doc = to_sarif(&report());
        let text = doc.to_string();
        assert!(text.contains("\"startLine\":3"));
        assert!(text.contains("\"startColumn\":9"));
        assert!(text.contains("crates/nn/src/a.rs"));
    }

    #[test]
    fn github_annotations_one_line_per_diag() {
        let out = github_annotations(&report());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("::error file=crates/nn/src/a.rs,line=3,col=9,"));
        assert!(lines[0].contains("title=headlint(panic)::"));
        assert!(lines[1].starts_with("::warning "));
    }
}
