//! Fixture key registry for the headlint integration tests.

/// Referenced by the seeded fixture, so the unused-key check passes it.
pub const GOOD_KEY: &str = "sim.good";
/// Never referenced anywhere: must be reported as an unused key.
pub const DEAD_KEY: &str = "sim.dead";
/// Referenced only from decision::zombie, which no live root reaches:
/// must be reported as registered-but-dead (telemetry-liveness).
pub const ZOMBIE_KEY: &str = "sim.zombie";
