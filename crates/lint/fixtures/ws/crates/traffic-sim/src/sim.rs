// Seeded determinism-taint violation, sink side: `Simulation::step` is a
// checksum-gated sink, and it calls across the crate boundary into
// decision::jitter, which reads an environment variable. The taint pass
// must report the env read with the two-crate call chain.

use decision::jitter;

pub struct Simulation {
    pub tick: u64,
}

impl Simulation {
    pub fn step(&mut self) {
        self.tick += 1;
        jitter();
    }
}
