// Seeded determinism-taint violations, sink side: `Simulation::step` is
// a checksum-gated sink, and it calls across the crate boundary into
// decision::jitter, which reads an environment variable. The taint pass
// must report the env read with the two-crate call chain.
// `apply_migrations` (the cross-segment merge of the sharded stepper) is
// itself a sink, and its env read must be flagged in place.

use decision::jitter;

pub struct Simulation {
    pub tick: u64,
}

impl Simulation {
    pub fn step(&mut self) {
        self.tick += 1;
        jitter();
    }

    fn apply_migrations(&mut self) {
        if std::env::var("MERGE_ORDER").is_ok() {
            self.tick += 1;
        }
    }
}
