// Seeded determinism-taint violation, fleet side: `Fleet::step` is a
// checksum-gated sink (the fleet bench gates on the world checksum it
// produces), and `fleet_jitter` reads an environment variable inside its
// call cone. The taint pass must report the env read with the chain.

pub struct Fleet {
    pub decisions: u64,
}

fn fleet_jitter() -> bool {
    std::env::var("FLEET_JITTER").is_ok()
}

impl Fleet {
    pub fn step(&mut self) {
        self.decisions += 1;
        fleet_jitter();
    }
}
