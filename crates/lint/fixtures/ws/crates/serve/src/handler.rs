// Seeded violation for the serve-no-graph-new rule: building a tape in a
// constructor is fine elsewhere (graph-churn sanctions `fn new`), but in
// crates/serve it still puts arena construction inside the daemon.

use nn::Graph;

pub struct Handler {
    tape: Graph,
}

impl Handler {
    pub fn new() -> Handler {
        Handler {
            tape: Graph::new(),
        }
    }
}
