// Seeded violations in the serve crate: building a tape in a constructor
// is fine elsewhere (graph-churn sanctions `fn new`), but in crates/serve
// it still puts arena construction inside the daemon
// (serve-no-graph-new), and `handle` reaches decision::risky_answer's
// unwrap across the crate boundary (serve-reachability).

use decision::risky_answer;
use nn::Graph;

pub struct Handler {
    tape: Graph,
}

impl Handler {
    pub fn new() -> Handler {
        Handler {
            tape: Graph::new(),
        }
    }

    pub fn handle(&self, v: &[f64]) -> f64 {
        risky_answer(v)
    }
}
