// Seeded workspace-rule violations, callee side. `jitter` is the
// nondeterminism source reached from traffic_sim::Simulation::step
// (determinism-taint), and `risky_answer` is the panic/indexing payload
// reached from serve::Handler::handle (serve-reachability). `zombie` is
// the only reference to ZOMBIE_KEY and nothing calls it, so the key is
// registered-but-dead (telemetry-liveness).

pub fn jitter() -> bool {
    std::env::var("HEAD_JITTER").is_ok()
}

pub fn risky_answer(v: &[f64]) -> f64 {
    let first = v.first().copied().unwrap();
    first + v[0]
}

pub fn zombie() {
    telemetry::counter_add(keys::ZOMBIE_KEY, 1);
}
