//! Seeded violations for the headlint integration tests. This file is
//! never compiled; it pins the engine's behaviour on a known-bad input.
//! Expected findings are asserted in crates/lint/tests/fixtures.rs —
//! keep the two in sync when editing.

use std::collections::HashMap;
use std::time::Instant;

pub fn violations(v: &[f64], x: Option<u32>) -> f64 {
    let _t = Instant::now();
    let _m: HashMap<u32, f64> = HashMap::new();
    let first = v[0];
    if first == 0.25 {
        return first;
    }
    let _frac = (first / 2.0) as f32;
    telemetry::counter_add("sim.typo", 1);
    telemetry::counter_add("sim.good", 1);
    telemetry::counter_add(keys::GOOD_KEY, 1);
    telemetry::flight_record("flight.bogus", first);
    let _h = std::thread::spawn(|| 0);
    let _x = x.unwrap();
    // lint:allow(panic)
    let _y = x.expect("boom");
    // lint:allow(wallclock) this directive suppresses nothing
    let _z = first;
    let ok = "strings containing unwrap() and panic! must never trip a pass";
    let _ = ok;
    first
}

pub fn churns_the_tape() {
    let mut g = Graph::new();
    let _ = &mut g;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        super::violations(&[1.0], Some(1)).to_string().parse::<f64>().unwrap();
    }
}
