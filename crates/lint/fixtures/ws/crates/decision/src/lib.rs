//! Fixture crate root WITHOUT the agreed panic-audit header attributes;
//! the lint-header pass must report both missing attributes.

pub mod seeded;
