//! The road-network graph: [`Segment`] nodes joined by per-lane [`Link`]s.
//!
//! A network is a directed graph of road segments. Each segment is a
//! straight multi-lane stretch with its own length and lane count; each of
//! its lanes either ends the network (`None` link — vehicles exit there)
//! or continues into a lane of a successor segment (`Some(Link)`). Lane
//! links express every junction kind the fleet world needs:
//!
//! * **corridor** — lane `i` of segment `k` links to lane `i` of segment
//!   `k + 1` (a long road cut into shardable pieces);
//! * **on-ramp / merge** — a ramp segment's lane links into a lane that a
//!   mainline segment's lane also links into;
//! * **off-ramp** — one mainline lane links into a ramp segment instead of
//!   the next mainline segment.
//!
//! Positions are *segment-local*: a vehicle is addressed by
//! `(SegmentId, lane, pos)` with `pos` measured from its segment's origin.
//! The degenerate one-node network (every lane link `None`) reproduces the
//! original single-road simulation exactly.

use serde::{Deserialize, Serialize};

/// Stable identifier of a segment within a [`RoadNetwork`].
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct SegmentId(pub u32);

/// Continuation of one lane into a successor segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Successor segment.
    pub to: SegmentId,
    /// Lane index within the successor segment.
    pub lane: usize,
}

/// One straight multi-lane stretch of road.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment length, m.
    pub length: f64,
    /// Number of lanes; lane 0 is the leftmost.
    pub lanes: usize,
    /// Per-lane continuation; `links[l]` is where lane `l` leads.
    /// `None` means vehicles leaving that lane exit the network.
    pub links: Vec<Option<Link>>,
}

impl Segment {
    /// A dead-end segment (all lanes exit the network).
    pub fn dead_end(length: f64, lanes: usize) -> Self {
        Self {
            length,
            lanes,
            links: vec![None; lanes],
        }
    }
}

/// A directed graph of road segments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoadNetwork {
    /// Segment nodes, indexed by [`SegmentId`].
    pub segments: Vec<Segment>,
}

impl RoadNetwork {
    /// The degenerate one-node network: a single straight road whose lanes
    /// all exit at the far end. Byte-compatible with the pre-network
    /// simulator.
    pub fn single(length: f64, lanes: usize) -> Self {
        Self {
            segments: vec![Segment::dead_end(length, lanes)],
        }
    }

    /// A chain of segments with identity lane mapping: lane `i` of segment
    /// `k` continues into lane `i` of segment `k + 1`; the last segment
    /// exits the network.
    pub fn corridor(lengths: &[f64], lanes: usize) -> Self {
        let segments = lengths
            .iter()
            .enumerate()
            .map(|(k, &length)| {
                let links = if k + 1 < lengths.len() {
                    let to = SegmentId(k as u32 + 1);
                    (0..lanes).map(|lane| Some(Link { to, lane })).collect()
                } else {
                    vec![None; lanes]
                };
                Segment {
                    length,
                    lanes,
                    links,
                }
            })
            .collect();
        Self { segments }
    }

    /// A mainline corridor with one on-ramp merging into the second
    /// segment and one off-ramp leaving the second-to-last segment.
    ///
    /// Layout for `main_lengths = [A, B, C]`:
    ///
    /// ```text
    ///   ramp_in ──┐                      ┌── ramp_out
    ///   main[A] ──┴── main[B] ── main[C]─┘
    /// ```
    ///
    /// The on-ramp's single lane merges into the rightmost lane of the
    /// second mainline segment; the rightmost lane of the second-to-last
    /// mainline segment diverges onto the off-ramp. Needs at least two
    /// mainline segments and two lanes.
    pub fn with_ramps(main_lengths: &[f64], lanes: usize, ramp_len: f64) -> Self {
        assert!(
            main_lengths.len() >= 2 && lanes >= 2,
            "ramps need >= 2 mainline segments and >= 2 lanes"
        );
        let mut net = Self::corridor(main_lengths, lanes);
        let n_main = main_lengths.len();
        // Off-ramp: rightmost lane of segment n_main - 2 diverges onto a
        // dead-end ramp instead of continuing down the mainline.
        let off_ramp = SegmentId(n_main as u32);
        net.segments.push(Segment::dead_end(ramp_len, 1));
        net.segments[n_main - 2].links[lanes - 1] = Some(Link {
            to: off_ramp,
            lane: 0,
        });
        // On-ramp: a one-lane feeder merging into the rightmost lane of
        // segment 1 (alongside segment 0's rightmost lane — a real merge).
        net.segments.push(Segment {
            length: ramp_len,
            lanes: 1,
            links: vec![Some(Link {
                to: SegmentId(1),
                lane: lanes - 1,
            })],
        });
        net
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the network has no segments (never valid for simulation).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Segments with no incoming link — where recycled conventional
    /// traffic re-enters the world. Falls back to segment 0 for networks
    /// where every segment has a predecessor (a pure cycle).
    pub fn entry_segments(&self) -> Vec<usize> {
        let mut has_incoming = vec![false; self.segments.len()];
        for seg in &self.segments {
            for link in seg.links.iter().flatten() {
                if let Some(slot) = has_incoming.get_mut(link.to.0 as usize) {
                    *slot = true;
                }
            }
        }
        let entries: Vec<usize> = (0..self.segments.len())
            .filter(|&i| !has_incoming[i])
            .collect();
        if entries.is_empty() {
            vec![0]
        } else {
            entries
        }
    }

    /// Incoming links of `seg`: `(predecessor, predecessor_lane, lane)`
    /// triples, in predecessor order (used by segment-aware sensing).
    pub fn incoming(&self, seg: SegmentId) -> Vec<(SegmentId, usize, usize)> {
        let mut in_links = Vec::new();
        for (p, pred) in self.segments.iter().enumerate() {
            for (pl, link) in pred.links.iter().enumerate() {
                if let Some(link) = link {
                    if link.to == seg {
                        in_links.push((SegmentId(p as u32), pl, link.lane));
                    }
                }
            }
        }
        in_links
    }

    /// Panics unless every segment has at least one lane, a positive
    /// finite length, and links that stay inside the network and inside
    /// the target segment's lane range.
    pub fn validate(&self) {
        assert!(!self.segments.is_empty(), "network must have segments");
        for (i, seg) in self.segments.iter().enumerate() {
            assert!(
                seg.length.is_finite() && seg.length > 0.0,
                "segment {i} has invalid length {}",
                seg.length
            );
            assert!(seg.lanes > 0, "segment {i} has no lanes");
            assert_eq!(
                seg.links.len(),
                seg.lanes,
                "segment {i} must have one link slot per lane"
            );
            for (lane, link) in seg.links.iter().enumerate() {
                if let Some(link) = link {
                    let target = self.segments.get(link.to.0 as usize);
                    assert!(
                        target.is_some(),
                        "segment {i} lane {lane} links out of range"
                    );
                    assert!(
                        target.is_some_and(|t| link.lane < t.lanes),
                        "segment {i} lane {lane} links to missing lane {} of segment {}",
                        link.lane,
                        link.to.0
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_a_dead_end_node() {
        let net = RoadNetwork::single(3000.0, 6);
        net.validate();
        assert_eq!(net.len(), 1);
        assert!(net.segments[0].links.iter().all(Option::is_none));
        assert_eq!(net.entry_segments(), vec![0]);
    }

    #[test]
    fn corridor_links_identity_lanes() {
        let net = RoadNetwork::corridor(&[500.0, 400.0, 300.0], 3);
        net.validate();
        assert_eq!(net.len(), 3);
        assert_eq!(
            net.segments[0].links[2],
            Some(Link {
                to: SegmentId(1),
                lane: 2
            })
        );
        assert!(net.segments[2].links.iter().all(Option::is_none));
        assert_eq!(net.entry_segments(), vec![0]);
    }

    #[test]
    fn ramps_merge_and_diverge() {
        let net = RoadNetwork::with_ramps(&[600.0, 600.0, 600.0], 4, 250.0);
        net.validate();
        assert_eq!(net.len(), 5, "3 mainline + off-ramp + on-ramp");
        // The on-ramp (last segment) merges into segment 1's rightmost lane.
        let on_ramp = net.segments.last().unwrap();
        assert_eq!(
            on_ramp.links[0],
            Some(Link {
                to: SegmentId(1),
                lane: 3
            })
        );
        // Segment 1's rightmost lane therefore has two predecessors.
        assert_eq!(net.incoming(SegmentId(1)).len(), 5, "4 mainline + ramp");
        // The off-ramp diverges from segment 1's rightmost lane.
        assert_eq!(
            net.segments[1].links[3],
            Some(Link {
                to: SegmentId(3),
                lane: 0
            })
        );
        // Entries: the mainline head and the on-ramp.
        assert_eq!(net.entry_segments(), vec![0, 4]);
    }

    #[test]
    #[should_panic(expected = "links to missing lane")]
    fn validate_rejects_out_of_range_lane() {
        let mut net = RoadNetwork::corridor(&[100.0, 100.0], 2);
        net.segments[0].links[0] = Some(Link {
            to: SegmentId(1),
            lane: 9,
        });
        net.validate();
    }

    #[test]
    fn incoming_reports_predecessor_lanes() {
        let net = RoadNetwork::corridor(&[100.0, 100.0], 2);
        let inc = net.incoming(SegmentId(1));
        assert_eq!(
            inc,
            vec![(SegmentId(0), 0, 0), (SegmentId(0), 1, 1)],
            "identity lane mapping from the predecessor"
        );
        assert!(net.incoming(SegmentId(0)).is_empty());
    }
}
