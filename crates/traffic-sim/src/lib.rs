//! # traffic-sim — a microscopic road-network traffic simulator
//!
//! SUMO substitute for the HEAD reproduction (ICDE 2023). The paper runs
//! its agent on a straight six-lane 3 km road simulated by SUMO and driven
//! through TraCI; this crate provides the equivalent substrate, grown into
//! a segment-graph world for fleet-scale simulation:
//!
//! * a [`RoadNetwork`] of multi-lane [`Segment`]s joined by per-lane links
//!   (corridors, on-ramps, off-ramps, merges), with vehicles addressed by
//!   `(SegmentId, lane, pos)` — the default config is the degenerate
//!   one-node network, byte-identical to the original straight road;
//! * discrete time steps (Δt = 0.5 s, the paper's maneuver granularity);
//! * conventional traffic controlled by the Krauss model (SUMO's default)
//!   with MOBIL-style lane changing, heterogeneous per-driver parameters,
//!   density maintenance via exit recycling into the entry segments;
//! * IDM and ACC controllers for the paper's rule-based baselines;
//! * deterministic space-sharded stepping ([`Simulation::set_shards`]):
//!   shards own contiguous segment runs, cross-boundary traffic moves as
//!   migration records merged in submission order, and per-segment RNG
//!   streams keep any shard count byte-identical to the serial run;
//! * a TraCI-like command interface ([`Simulation::set_command`]) for
//!   externally controlled autonomous vehicles, with the paper's traffic
//!   restrictions (speed limits, ±a' acceleration bound, adjacent-lane
//!   changes only) — cross-segment transitions ride the same machinery;
//! * collision detection (vehicle crash and road-boundary violation), the
//!   paper's episode-terminating events.
//!
//! ```
//! use traffic_sim::{Simulation, SimConfig, ExternalCommand, LaneChange};
//!
//! let mut sim = Simulation::new(SimConfig { road_len: 500.0, ..SimConfig::default() });
//! sim.populate();
//! sim.warm_up(20);
//! let av = sim.spawn_external(2, 10.0, 15.0);
//! sim.set_command(av, ExternalCommand { lane_change: LaneChange::Keep, accel: 1.0 });
//! let outcome = sim.step();
//! assert!(outcome.collisions.is_empty());
//! ```

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod models;
mod network;
mod sim;
mod vehicle;

pub use models::{
    acc_accel, idm_accel, krauss_accel, mobil_decision, FollowerView, LaneChange, LaneContext,
    LeaderView,
};
pub use network::{Link, RoadNetwork, Segment, SegmentId};
pub use sim::{CollisionEvent, ExternalCommand, SimConfig, Simulation, StepOutcome};
pub use vehicle::{Controller, DriverParams, Vehicle, VehicleId};
