//! # traffic-sim — a microscopic multi-lane highway simulator
//!
//! SUMO substitute for the HEAD reproduction (ICDE 2023). The paper runs
//! its agent on a straight six-lane 3 km road simulated by SUMO and driven
//! through TraCI; this crate provides the equivalent substrate:
//!
//! * discrete time steps (Δt = 0.5 s, the paper's maneuver granularity);
//! * conventional traffic controlled by the Krauss model (SUMO's default)
//!   with MOBIL-style lane changing, heterogeneous per-driver parameters,
//!   density maintenance via exit recycling;
//! * IDM and ACC controllers for the paper's rule-based baselines;
//! * a TraCI-like command interface ([`Simulation::set_command`]) for the
//!   externally controlled autonomous vehicle, with the paper's traffic
//!   restrictions (speed limits, ±a' acceleration bound, adjacent-lane
//!   changes only);
//! * collision detection (vehicle crash and road-boundary violation), the
//!   paper's episode-terminating events.
//!
//! ```
//! use traffic_sim::{Simulation, SimConfig, ExternalCommand, LaneChange};
//!
//! let mut sim = Simulation::new(SimConfig { road_len: 500.0, ..SimConfig::default() });
//! sim.populate();
//! sim.warm_up(20);
//! let av = sim.spawn_external(2, 10.0, 15.0);
//! sim.set_command(av, ExternalCommand { lane_change: LaneChange::Keep, accel: 1.0 });
//! let outcome = sim.step();
//! assert!(outcome.collisions.is_empty());
//! ```

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod models;
mod sim;
mod vehicle;

pub use models::{
    acc_accel, idm_accel, krauss_accel, mobil_decision, FollowerView, LaneChange, LaneContext,
    LeaderView,
};
pub use sim::{CollisionEvent, ExternalCommand, SimConfig, Simulation, StepOutcome};
pub use vehicle::{Controller, DriverParams, Vehicle, VehicleId};
