//! Longitudinal car-following models and the lateral lane-change model.
//!
//! * [`idm_accel`] — Intelligent Driver Model (Treiber, Hennecke & Helbing
//!   2000), the paper's IDM-LC baseline controller.
//! * [`krauss_accel`] — Krauss model (Krauss et al. 1997), SUMO's default;
//!   drives the conventional traffic, matching the paper's "SUMO-controlled
//!   conventional vehicles".
//! * [`acc_accel`] — constant-time-gap adaptive cruise control (Milanés &
//!   Shladover 2014), the ACC-LC baseline controller.
//! * [`mobil_decision`] — MOBIL-style incentive+safety lane changing
//!   (functional equivalent of SUMO's LC2013), used by all rule-based
//!   agents and the conventional traffic.

use crate::vehicle::{DriverParams, Vehicle};

/// A leader observation: bumper gap (m) and leader speed (m/s).
#[derive(Clone, Copy, Debug)]
pub struct LeaderView {
    /// Bumper-to-bumper gap, m.
    pub gap: f64,
    /// Leader speed, m/s.
    pub vel: f64,
}

/// IDM acceleration for a follower at speed `v` with optional leader.
pub fn idm_accel(d: &DriverParams, v: f64, leader: Option<LeaderView>) -> f64 {
    let v0 = d.desired_speed.max(0.1);
    let free = 1.0 - (v / v0).powi(4);
    let interaction = match leader {
        Some(l) => {
            let dv = v - l.vel;
            let s_star =
                d.min_gap + (v * d.headway + v * dv / (2.0 * (d.accel * d.decel).sqrt())).max(0.0);
            let s = l.gap.max(0.1);
            (s_star / s).powi(2)
        }
        None => 0.0,
    };
    d.accel * (free - interaction)
}

/// Krauss safe-velocity acceleration with driver imperfection `dawdle` in
/// `[0, 1)` (pass 0 for deterministic behaviour; the simulation samples it).
pub fn krauss_accel(
    d: &DriverParams,
    v: f64,
    leader: Option<LeaderView>,
    dt: f64,
    dawdle: f64,
) -> f64 {
    let tau = d.headway;
    let b = d.decel;
    let v_safe = match leader {
        Some(l) => {
            // v_safe = -b*tau + sqrt(b^2 tau^2 + v_l^2 + 2 b g)
            let g = (l.gap - d.min_gap).max(0.0);
            -b * tau + (b * b * tau * tau + l.vel * l.vel + 2.0 * b * g).sqrt()
        }
        None => f64::INFINITY,
    };
    let v_des = (v + d.accel * dt).min(v_safe).min(d.desired_speed);
    let v_next = (v_des - d.sigma * d.accel * dt * dawdle).max(0.0);
    (v_next - v) / dt
}

/// Constant-time-gap ACC acceleration (gap-and-speed linear feedback).
pub fn acc_accel(d: &DriverParams, v: f64, leader: Option<LeaderView>) -> f64 {
    const K_GAP: f64 = 0.23; // 1/s^2, gap-error gain
    const K_VEL: f64 = 0.7; // 1/s, speed-error gain
    match leader {
        Some(l) => {
            let desired_gap = d.min_gap + d.headway * v;
            let a = K_GAP * (l.gap - desired_gap) + K_VEL * (l.vel - v);
            // Blend toward free-flow target when far from the leader.
            if l.gap > 2.0 * desired_gap {
                a.max(K_VEL * (d.desired_speed - v))
            } else {
                a
            }
        }
        None => K_VEL * (d.desired_speed - v),
    }
}

/// Deceleration `follower` must apply to keep a safe Krauss gap if
/// `candidate` merges in front of it. Used as the MOBIL safety criterion.
fn induced_accel(follower: &DriverParams, follower_vel: f64, new_leader: LeaderView) -> f64 {
    idm_accel(follower, follower_vel, Some(new_leader))
}

/// Neighbourhood of a vehicle in one lane, as seen by the lane-change model.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneContext {
    /// Leader in the lane, if any.
    pub leader: Option<LeaderView>,
    /// Follower in the lane: gap from follower's front bumper to the
    /// candidate's rear bumper, and follower's speed and driver profile.
    pub follower: Option<FollowerView>,
}

/// A follower observation for safety checks.
#[derive(Clone, Copy, Debug)]
pub struct FollowerView {
    /// Gap between the follower's front bumper and the candidate rear, m.
    pub gap: f64,
    /// Follower speed, m/s.
    pub vel: f64,
    /// Follower's comfortable deceleration, m/s^2.
    pub decel: f64,
    /// Follower's behavioural profile (for induced-deceleration estimates).
    pub driver: DriverParams,
}

/// Outcome of a lane-change evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneChange {
    /// Stay in the current lane.
    Keep,
    /// Move one lane to the left (towards lane 0).
    Left,
    /// Move one lane to the right.
    Right,
}

/// MOBIL-style lane-change decision.
///
/// A change is *safe* when the would-be new follower does not need to brake
/// harder than its comfortable deceleration and all gaps are positive.
/// A change is *desirable* when the own acceleration gain, minus the
/// politeness-weighted loss imposed on the new follower, exceeds the
/// driver's switching threshold.
pub fn mobil_decision(
    vehicle: &Vehicle,
    current: LaneContext,
    left: Option<LaneContext>,
    right: Option<LaneContext>,
) -> LaneChange {
    let d = &vehicle.driver;
    let a_now = idm_accel(d, vehicle.vel, current.leader);

    let evaluate = |ctx: &LaneContext| -> Option<f64> {
        // Safety: physical gaps must exist.
        if let Some(f) = ctx.follower {
            if f.gap <= 0.5 {
                return None;
            }
            let induced = induced_accel(
                &f.driver,
                f.vel,
                LeaderView {
                    gap: f.gap,
                    vel: vehicle.vel,
                },
            );
            if induced < -f.decel {
                return None;
            }
        }
        if let Some(l) = ctx.leader {
            if l.gap <= 0.5 {
                return None;
            }
        }
        let a_new = idm_accel(d, vehicle.vel, ctx.leader);
        let follower_penalty = ctx
            .follower
            .map(|f| {
                let before = idm_accel(
                    &f.driver,
                    f.vel,
                    current.follower.map(|cf| LeaderView {
                        gap: cf.gap,
                        vel: vehicle.vel,
                    }),
                );
                let after = induced_accel(
                    &f.driver,
                    f.vel,
                    LeaderView {
                        gap: f.gap,
                        vel: vehicle.vel,
                    },
                );
                (before - after).max(0.0)
            })
            .unwrap_or(0.0);
        Some(a_new - a_now - d.politeness * follower_penalty)
    };

    let left_gain = left
        .as_ref()
        .and_then(&evaluate)
        .unwrap_or(f64::NEG_INFINITY);
    let right_gain = right
        .as_ref()
        .and_then(evaluate)
        .unwrap_or(f64::NEG_INFINITY);

    if left_gain > d.lc_threshold && left_gain >= right_gain {
        LaneChange::Left
    } else if right_gain > d.lc_threshold {
        LaneChange::Right
    } else {
        LaneChange::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::{Controller, VehicleId};

    fn nominal_vehicle(vel: f64) -> Vehicle {
        Vehicle {
            id: VehicleId(1),
            seg: crate::network::SegmentId(0),
            lane: 1,
            pos: 100.0,
            vel,
            accel: 0.0,
            length: 5.0,
            controller: Controller::Idm,
            driver: DriverParams::nominal(),
            collided: false,
            lc_cooldown: 0,
        }
    }

    #[test]
    fn idm_free_road_accelerates_below_desired_speed() {
        let d = DriverParams::nominal();
        assert!(idm_accel(&d, 10.0, None) > 0.0);
        // At the desired speed the free term vanishes.
        assert!(idm_accel(&d, d.desired_speed, None).abs() < 1e-9);
    }

    #[test]
    fn idm_brakes_when_close_and_closing() {
        let d = DriverParams::nominal();
        let a = idm_accel(&d, 20.0, Some(LeaderView { gap: 5.0, vel: 5.0 }));
        assert!(a < -2.0, "expected hard braking, got {a}");
    }

    #[test]
    fn idm_monotone_in_gap() {
        let d = DriverParams::nominal();
        let mut last = f64::NEG_INFINITY;
        for gap in [3.0, 6.0, 12.0, 25.0, 50.0, 100.0] {
            let a = idm_accel(&d, 15.0, Some(LeaderView { gap, vel: 15.0 }));
            assert!(a >= last, "IDM accel must not decrease with gap");
            last = a;
        }
    }

    #[test]
    fn krauss_never_exceeds_safe_speed() {
        let d = DriverParams::nominal();
        let dt = 0.5;
        let v = 20.0;
        let leader = LeaderView {
            gap: 10.0,
            vel: 5.0,
        };
        let a = krauss_accel(&d, v, Some(leader), dt, 0.0);
        let v_next = v + a * dt;
        let b = d.decel;
        let tau = d.headway;
        let g = (leader.gap - d.min_gap).max(0.0);
        let v_safe = -b * tau + (b * b * tau * tau + leader.vel * leader.vel + 2.0 * b * g).sqrt();
        assert!(v_next <= v_safe + 1e-9);
    }

    #[test]
    fn krauss_free_road_approaches_desired_speed() {
        let d = DriverParams::nominal();
        let mut v: f64 = 0.0;
        for _ in 0..200 {
            let a = krauss_accel(&d, v, None, 0.5, 0.0);
            v = (v + a * 0.5).max(0.0);
        }
        assert!((v - d.desired_speed).abs() < 0.5, "krauss settled at {v}");
    }

    #[test]
    fn acc_tracks_time_gap() {
        let d = DriverParams::nominal();
        let v = 20.0;
        let desired_gap = d.min_gap + d.headway * v;
        // At exactly the desired gap and matched speed, accel ~ 0.
        let a = acc_accel(
            &d,
            v,
            Some(LeaderView {
                gap: desired_gap,
                vel: v,
            }),
        );
        assert!(a.abs() < 1e-9);
        // Too close -> brake; too far (but not free-flow) -> accelerate.
        assert!(
            acc_accel(
                &d,
                v,
                Some(LeaderView {
                    gap: desired_gap - 5.0,
                    vel: v
                })
            ) < 0.0
        );
        assert!(
            acc_accel(
                &d,
                v,
                Some(LeaderView {
                    gap: desired_gap + 5.0,
                    vel: v
                })
            ) > 0.0
        );
    }

    #[test]
    fn mobil_changes_to_free_lane_when_blocked() {
        let vehicle = nominal_vehicle(15.0);
        let blocked = LaneContext {
            leader: Some(LeaderView { gap: 6.0, vel: 5.0 }),
            follower: None,
        };
        let free = LaneContext {
            leader: None,
            follower: None,
        };
        let d = mobil_decision(&vehicle, blocked, Some(free), None);
        assert_eq!(d, LaneChange::Left);
    }

    #[test]
    fn mobil_keeps_lane_when_no_gain() {
        let vehicle = nominal_vehicle(15.0);
        let ctx = LaneContext {
            leader: None,
            follower: None,
        };
        let d = mobil_decision(&vehicle, ctx, Some(ctx), Some(ctx));
        assert_eq!(d, LaneChange::Keep);
    }

    #[test]
    fn mobil_rejects_unsafe_follower_gap() {
        let vehicle = nominal_vehicle(15.0);
        let blocked = LaneContext {
            leader: Some(LeaderView { gap: 6.0, vel: 5.0 }),
            follower: None,
        };
        // Target lane free ahead but a fast follower is right on the bumper.
        let unsafe_lane = LaneContext {
            leader: None,
            follower: Some(FollowerView {
                gap: 1.0,
                vel: 30.0,
                decel: 2.5,
                driver: DriverParams::nominal(),
            }),
        };
        let d = mobil_decision(&vehicle, blocked, Some(unsafe_lane), None);
        assert_eq!(d, LaneChange::Keep);
    }
}
