//! The simulation core: a road-network world of multi-lane segments,
//! discrete 0.5 s steps, heterogeneous model-controlled traffic, and a
//! TraCI-like command interface for externally controlled vehicles.
//!
//! # Sharded stepping and the determinism contract
//!
//! Every segment owns its own vehicle storage and its own seeded RNG
//! stream (segment 0 uses the config seed directly — byte-compatible with
//! the pre-network simulator — and segment `k > 0` uses
//! [`par::stream_seed`]`(seed, k)`). A step proceeds in four phases:
//!
//! 1. **ghost snapshot** (serial) — for every lane with a continuation
//!    link, the rearmost vehicle of the successor lane is captured as a
//!    pre-step "ghost leader" so car-following sees across the boundary;
//! 2. **segment stepping** (sharded) — each shard steps a contiguous run
//!    of segments purely locally: lane changes, car-following (dawdle
//!    draws from the segment's own stream), integration, collision
//!    detection, and classification of vehicles that crossed the segment
//!    end into *migration records*;
//! 3. **migration merge** (serial) — migration records are applied in
//!    submission order (segment index, then emission order); a blocked
//!    merge pocket holds the vehicle at the boundary instead;
//! 4. **recycle + respawn** (serial) — network exits are re-injected at
//!    the entry segments using each entry segment's own stream.
//!
//! Because every cross-segment read comes from the pre-step ghost
//! snapshot, every RNG draw comes from a per-segment stream, and the merge
//! is serial in a partition-independent order, an N-shard run is
//! byte-identical to the 1-shard run ([`Simulation::state_checksum`]).

use crate::models::{
    acc_accel, idm_accel, krauss_accel, mobil_decision, FollowerView, LaneChange, LaneContext,
    LeaderView,
};
use crate::network::{RoadNetwork, Segment, SegmentId};
use crate::vehicle::{Controller, DriverParams, Vehicle, VehicleId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use telemetry::keys;

/// Static configuration of a simulation run.
///
/// Defaults follow the paper's experimental settings (§V-A): a six-lane
/// 3 km road, 3.2 m lanes, Δt = 0.5 s, speed limits 5–90 km/h, |a| ≤ 3 m/s²,
/// and 180 vehicles per kilometre of road.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of lanes (κ) of the degenerate single-segment road. Lane 0
    /// is the leftmost. Ignored when `network` is set.
    pub lanes: usize,
    /// Road length of the degenerate single-segment road, m. Ignored when
    /// `network` is set.
    pub road_len: f64,
    /// Lane width, m.
    pub lane_width: f64,
    /// Step length Δt, s.
    pub dt: f64,
    /// Minimum speed for externally controlled vehicles, m/s.
    pub v_min: f64,
    /// Speed limit, m/s.
    pub v_max: f64,
    /// Legal acceleration bound a', m/s².
    pub a_max: f64,
    /// Target traffic density per segment, vehicles per km.
    pub density_per_km: f64,
    /// Vehicle body length, m.
    pub vehicle_len: f64,
    /// Steps a vehicle must wait between lane changes.
    pub lc_cooldown_steps: u32,
    /// Controller for conventional traffic.
    pub conventional: Controller,
    /// Emergency deceleration available to conventional traffic, m/s².
    ///
    /// The paper's ±a' restriction constrains the *autonomous* vehicle's
    /// policy; physical vehicles can brake harder in emergencies (SUMO uses
    /// 9 m/s² by default).
    pub emergency_decel: f64,
    /// RNG seed; every run with the same seed is bit-identical.
    pub seed: u64,
    /// Road network. `None` builds the degenerate one-node network from
    /// `road_len`/`lanes`, which reproduces the original single-road
    /// simulation exactly.
    pub network: Option<RoadNetwork>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            lanes: 6,
            road_len: 3000.0,
            lane_width: 3.2,
            dt: 0.5,
            v_min: 5.0 / 3.6,
            v_max: 25.0,
            a_max: 3.0,
            density_per_km: 180.0,
            vehicle_len: 5.0,
            lc_cooldown_steps: 4,
            conventional: Controller::Krauss,
            emergency_decel: 9.0,
            seed: 0,
            network: None,
        }
    }
}

/// Command applied to an externally controlled vehicle on the next step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExternalCommand {
    /// Lateral lane-change behaviour.
    pub lane_change: LaneChange,
    /// Longitudinal acceleration, m/s² (clamped to ±`a_max`).
    pub accel: f64,
}

impl Default for ExternalCommand {
    fn default() -> Self {
        Self {
            lane_change: LaneChange::Keep,
            accel: 0.0,
        }
    }
}

/// A collision detected during a step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollisionEvent {
    /// The rear (striking) vehicle, or the vehicle that left the road.
    pub vehicle: VehicleId,
    /// The struck vehicle; `None` for a road-boundary violation.
    pub other: Option<VehicleId>,
    /// Segment the event happened on.
    pub seg: SegmentId,
    /// Longitudinal position of the event within the segment, m.
    pub pos: f64,
}

/// Everything that happened during one [`Simulation::step`].
#[derive(Clone, Debug, Default)]
pub struct StepOutcome {
    /// Collisions detected this step.
    pub collisions: Vec<CollisionEvent>,
    /// Externally controlled vehicles that crossed a network exit this
    /// step (reported every step until the owner removes them).
    pub exited_external: Vec<VehicleId>,
    /// External commands whose acceleration was non-finite this step and
    /// was replaced by 0 (coasting) instead of corrupting the integration.
    pub sanitized_commands: u32,
    /// Vehicles frozen this step because integrating them would have
    /// produced a non-finite position or velocity.
    pub non_finite: Vec<VehicleId>,
    /// Vehicles that crossed a segment boundary and were merged into their
    /// successor segment this step.
    pub migrated: u32,
    /// Boundary-crossing vehicles held at the segment end because the
    /// merge pocket in the successor lane was occupied.
    pub held: u32,
}

/// Pre-step snapshot of the rearmost successor-lane vehicle, seen through
/// a lane link as a leader at `seg.length + rear` in source coordinates.
#[derive(Clone, Copy, Debug)]
struct GhostLeader {
    /// Rear-bumper position in the *source* segment's coordinates.
    rear_pos: f64,
    /// Velocity, m/s.
    vel: f64,
}

/// Per-segment ghost-leader bands: `ghosts[seg][lane]`.
type GhostMap = Vec<Vec<Option<GhostLeader>>>;

/// A vehicle that crossed its segment end through a lane link.
struct Migration {
    /// The vehicle, still in source coordinates.
    vehicle: Vehicle,
    /// Source segment index.
    from: usize,
    /// Target segment index.
    to: usize,
    /// Target lane.
    to_lane: usize,
}

/// Everything one segment produced during its local step.
#[derive(Default)]
struct SegOut {
    collisions: Vec<CollisionEvent>,
    exited_external: Vec<VehicleId>,
    sanitized: u32,
    non_finite: Vec<VehicleId>,
    /// Conventional vehicles that left through a network exit.
    recycled: usize,
    /// Boundary crossings, in emission (storage) order.
    migrations: Vec<Migration>,
}

/// One segment's mutable state: vehicle storage plus its own RNG stream.
struct SegmentState {
    vehicles: Vec<Vehicle>,
    rng: ChaCha12Rng,
    pending_respawns: usize,
}

/// A microscopic multi-lane traffic simulation over a road network.
pub struct Simulation {
    cfg: SimConfig,
    net: RoadNetwork,
    entries: Vec<usize>,
    segs: Vec<SegmentState>,
    index: BTreeMap<VehicleId, (usize, usize)>,
    commands: BTreeMap<VehicleId, ExternalCommand>,
    next_id: u64,
    step_count: u64,
    shards: usize,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let net = cfg
            .network
            .clone()
            .unwrap_or_else(|| RoadNetwork::single(cfg.road_len, cfg.lanes));
        net.validate();
        let segs = (0..net.len())
            .map(|k| SegmentState {
                vehicles: Vec::new(),
                // Segment 0 uses the base seed directly so the degenerate
                // one-node network reproduces the pre-network RNG stream;
                // every other segment gets an independent derived stream.
                rng: if k == 0 {
                    ChaCha12Rng::seed_from_u64(cfg.seed)
                } else {
                    ChaCha12Rng::seed_from_u64(par::stream_seed(cfg.seed, k as u64))
                },
                pending_respawns: 0,
            })
            .collect();
        let entries = net.entry_segments();
        Self {
            cfg,
            net,
            entries,
            segs,
            index: BTreeMap::new(),
            commands: BTreeMap::new(),
            next_id: 0,
            step_count: 0,
            shards: 1,
        }
    }

    /// Configuration in effect.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// The road network in effect.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// Number of shards segment stepping fans out over (1 = serial). The
    /// result is byte-identical at any shard count; sharding only changes
    /// how the per-segment work is scheduled over [`par::pool`].
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Sets the shard count (clamped to at least 1).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Number of steps executed.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Simulation clock, s.
    pub fn time(&self) -> f64 {
        self.step_count as f64 * self.cfg.dt
    }

    /// All vehicles in the world, segment-major (segment-0 storage order
    /// first, then segment 1, ...).
    pub fn vehicles(&self) -> impl Iterator<Item = &Vehicle> {
        self.segs.iter().flat_map(|s| s.vehicles.iter())
    }

    /// Number of vehicles in the world.
    pub fn vehicle_count(&self) -> usize {
        self.segs.iter().map(|s| s.vehicles.len()).sum()
    }

    /// Vehicles on one segment, in storage order.
    pub fn segment_vehicles(&self, seg: SegmentId) -> &[Vehicle] {
        self.segs
            .get(seg.0 as usize)
            .map(|s| s.vehicles.as_slice())
            .unwrap_or(&[])
    }

    /// Looks up a vehicle by id.
    pub fn get(&self, id: VehicleId) -> Option<&Vehicle> {
        self.index
            .get(&id)
            .and_then(|&(s, i)| self.segs.get(s).and_then(|seg| seg.vehicles.get(i)))
    }

    /// FNV-1a checksum over the full kinematic state (id, segment, lane,
    /// position and velocity bit patterns), segment-major. Two runs agree
    /// on this iff they agree byte-for-byte on every vehicle.
    pub fn state_checksum(&self) -> u64 {
        let mut c = par::Checksum::new();
        for seg in &self.segs {
            for v in &seg.vehicles {
                c.push_u64(v.id.0);
                c.push_u64(u64::from(v.seg.0));
                c.push_u64(v.lane as u64);
                c.push_f64(v.pos);
                c.push_f64(v.vel);
            }
        }
        c.finish()
    }

    /// Fills every segment with conventional traffic at the configured
    /// density (per-segment targets, so a short ramp gets proportionally
    /// fewer vehicles than a long mainline stretch).
    ///
    /// Vehicles are placed with jittered spacing and heterogeneous drivers,
    /// each starting near its desired speed.
    pub fn populate(&mut self) {
        for s in 0..self.net.len() {
            self.populate_segment(s);
        }
    }

    fn populate_segment(&mut self, s: usize) {
        let seg_len = self.net.segments[s].length;
        let seg_lanes = self.net.segments[s].lanes;
        let target = (self.cfg.density_per_km * seg_len / 1000.0).round() as usize;
        let per_lane = target / seg_lanes;
        let spacing = seg_len / (per_lane.max(1)) as f64;
        for lane in 0..seg_lanes {
            let mut placements = Vec::with_capacity(per_lane);
            {
                let state = &mut self.segs[s];
                let mut pos = self.cfg.vehicle_len + state.rng.random_range(0.0..spacing * 0.5);
                for _ in 0..per_lane {
                    let driver = DriverParams::sample(&mut state.rng, self.cfg.v_max);
                    let vel = driver.desired_speed * state.rng.random_range(0.7..1.0);
                    placements.push((pos, vel, driver));
                    pos += spacing * state.rng.random_range(0.8..1.2);
                    if pos > seg_len {
                        break;
                    }
                }
            }
            // Cap each follower's initial speed by the Krauss safe speed
            // w.r.t. its leader so the safe-speed invariant holds from
            // step 0 even at high densities.
            for i in (0..placements.len().saturating_sub(1)).rev() {
                let (leader_pos, leader_vel, _) = placements[i + 1];
                let (pos, vel, driver) = &mut placements[i];
                let gap = (leader_pos - self.cfg.vehicle_len - *pos - driver.min_gap).max(0.0);
                let b = driver.decel;
                let tau = driver.headway;
                let v_safe =
                    -b * tau + (b * b * tau * tau + leader_vel * leader_vel + 2.0 * b * gap).sqrt();
                *vel = vel.min(v_safe.max(0.0));
            }
            for (pos, vel, driver) in placements {
                self.insert_vehicle(s, lane, pos, vel, self.cfg.conventional, driver);
            }
        }
    }

    /// Runs `steps` plain steps (used to let traffic settle before an
    /// episode starts).
    pub fn warm_up(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    fn insert_vehicle(
        &mut self,
        seg: usize,
        lane: usize,
        pos: f64,
        vel: f64,
        controller: Controller,
        driver: DriverParams,
    ) -> VehicleId {
        let id = VehicleId(self.next_id);
        self.next_id += 1;
        let state = &mut self.segs[seg];
        state.vehicles.push(Vehicle {
            id,
            seg: SegmentId(seg as u32),
            lane,
            pos,
            vel,
            accel: 0.0,
            length: self.cfg.vehicle_len,
            controller,
            driver,
            collided: false,
            lc_cooldown: 0,
        });
        self.index.insert(id, (seg, state.vehicles.len() - 1));
        id
    }

    /// Inserts an externally controlled vehicle on the first segment,
    /// clearing a safe pocket around it. Returns the new vehicle's id.
    pub fn spawn_external(&mut self, lane: usize, pos: f64, vel: f64) -> VehicleId {
        self.spawn_external_in(SegmentId(0), lane, pos, vel)
    }

    /// Inserts an externally controlled vehicle on `seg`, clearing a safe
    /// pocket around it (any conventional vehicle overlapping the pocket
    /// is removed). Returns the new vehicle's id.
    pub fn spawn_external_in(
        &mut self,
        seg: SegmentId,
        lane: usize,
        pos: f64,
        vel: f64,
    ) -> VehicleId {
        let s = seg.0 as usize;
        assert!(s < self.net.len(), "segment out of range");
        assert!(lane < self.net.segments[s].lanes, "lane out of range");
        let pocket = 2.5 * self.cfg.vehicle_len;
        self.segs[s]
            .vehicles
            .retain(|v| !(v.lane == lane && (v.pos - pos).abs() < pocket + v.length));
        self.reindex();
        self.insert_vehicle(
            s,
            lane,
            pos,
            vel,
            Controller::External,
            DriverParams::nominal(),
        )
    }

    /// Removes a vehicle (e.g. a finished external agent).
    pub fn remove(&mut self, id: VehicleId) {
        if let Some(&(s, i)) = self.index.get(&id) {
            self.segs[s].vehicles.swap_remove(i);
            self.reindex();
            self.commands.remove(&id);
        }
    }

    fn reindex(&mut self) {
        self.index = self
            .segs
            .iter()
            .enumerate()
            .flat_map(|(s, seg)| {
                seg.vehicles
                    .iter()
                    .enumerate()
                    .map(move |(i, v)| (v.id, (s, i)))
            })
            .collect();
    }

    /// Sets the maneuver an externally controlled vehicle performs on the
    /// next [`Simulation::step`].
    pub fn set_command(&mut self, id: VehicleId, cmd: ExternalCommand) {
        self.commands.insert(id, cmd);
    }

    /// Nearest vehicle ahead of `pos` in `lane` of the first segment
    /// (excluding `exclude`).
    pub fn leader_in_lane(&self, lane: usize, pos: f64, exclude: VehicleId) -> Option<&Vehicle> {
        leader_in(&self.segs[0].vehicles, lane, pos, exclude)
    }

    /// Nearest vehicle behind `pos` in `lane` of the first segment
    /// (excluding `exclude`).
    pub fn follower_in_lane(&self, lane: usize, pos: f64, exclude: VehicleId) -> Option<&Vehicle> {
        follower_in(&self.segs[0].vehicles, lane, pos, exclude)
    }

    /// Pre-step ghost snapshot: for every lane with a continuation link,
    /// the rearmost vehicle of the successor lane, projected into source
    /// coordinates. Computed before any segment steps, so it is identical
    /// at every shard count.
    fn ghost_leaders(&self) -> GhostMap {
        self.net
            .segments
            .iter()
            .map(|seg| {
                seg.links
                    .iter()
                    .map(|link| {
                        link.as_ref().and_then(|link| {
                            self.segs[link.to.0 as usize]
                                .vehicles
                                .iter()
                                .filter(|v| v.lane == link.lane)
                                .min_by(|a, b| a.pos.total_cmp(&b.pos))
                                .map(|v| GhostLeader {
                                    rear_pos: seg.length + v.rear(),
                                    vel: v.vel,
                                })
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// Advances the simulation by one Δt step.
    pub fn step(&mut self) -> StepOutcome {
        let _step_span = telemetry::span!(keys::SPAN_SIM_STEP);
        let n = self.segs.len();
        let shard_count = self.shards.min(n).max(1);
        let ghosts = self.ghost_leaders();
        let states = std::mem::take(&mut self.segs);

        // Phase 2 of the module contract: step every segment locally.
        // Shards own contiguous runs of segments; the merge below is in
        // submission order either way, so the partition never shows.
        let stepped: Vec<(SegmentState, SegOut)> = {
            let cfg = &self.cfg;
            let net = &self.net;
            let commands = &self.commands;
            let run_seg = |i: usize, mut state: SegmentState| {
                let out = step_segment(cfg, &net.segments[i], i, &mut state, &ghosts[i], commands);
                (state, out)
            };
            if shard_count <= 1 {
                states
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| run_seg(i, s))
                    .collect()
            } else {
                let per = n.div_ceil(shard_count);
                let mut chunks: Vec<(usize, Vec<SegmentState>)> = Vec::with_capacity(shard_count);
                for (i, state) in states.into_iter().enumerate() {
                    if i % per == 0 {
                        chunks.push((i, Vec::with_capacity(per)));
                    }
                    if let Some(chunk) = chunks.last_mut() {
                        chunk.1.push(state);
                    }
                }
                let mapped = par::pool().try_map(chunks, |_, (start, chunk)| {
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(k, s)| run_seg(start + k, s))
                        .collect::<Vec<_>>()
                });
                match mapped {
                    Ok(per_shard) => per_shard.into_iter().flatten().collect(),
                    // lint:allow(panic) a shard worker panic is already a bug
                    // in the step itself; surface it instead of limping on
                    Err(e) => panic!("shard worker failed: {e}"),
                }
            }
        };

        // Serial merge: aggregate per-segment outcomes in segment order.
        let mut outcome = StepOutcome::default();
        let mut migrations: Vec<Migration> = Vec::new();
        let mut total_recycled = 0usize;
        let mut needs_reindex = false;
        let mut states_back = Vec::with_capacity(n);
        for (state, mut out) in stepped {
            outcome.collisions.append(&mut out.collisions);
            outcome.exited_external.append(&mut out.exited_external);
            outcome.sanitized_commands += out.sanitized;
            outcome.non_finite.append(&mut out.non_finite);
            total_recycled += out.recycled;
            needs_reindex |= out.recycled > 0 || !out.migrations.is_empty();
            migrations.append(&mut out.migrations);
            states_back.push(state);
        }
        self.segs = states_back;

        // Phase 3: apply migrations in submission order.
        let (migrated, held) = self.apply_migrations(migrations);
        outcome.migrated = migrated;
        outcome.held = held;
        if needs_reindex {
            self.reindex();
        }

        // Phase 4: recycle network exits into the entry segments.
        if total_recycled > 0 {
            for k in 0..total_recycled {
                let e = self.entries[k % self.entries.len()];
                self.segs[e].pending_respawns += 1;
            }
        }
        for k in 0..self.entries.len() {
            let e = self.entries[k];
            self.try_respawn_seg(e);
        }

        if !outcome.collisions.is_empty() {
            telemetry::counter_add(keys::SIM_COLLISIONS, outcome.collisions.len() as u64);
        }
        if outcome.sanitized_commands > 0 {
            telemetry::counter_add(
                keys::SIM_SANITIZED_COMMANDS,
                outcome.sanitized_commands as u64,
            );
            telemetry::flight_record(
                keys::SIM_SANITIZED_COMMANDS,
                outcome.sanitized_commands as f64,
            );
        }
        if !outcome.non_finite.is_empty() {
            telemetry::counter_add(keys::SIM_NONFINITE_FROZEN, outcome.non_finite.len() as u64);
            telemetry::flight_record(keys::SIM_NONFINITE_FROZEN, outcome.non_finite.len() as f64);
        }
        if outcome.migrated > 0 {
            telemetry::counter_add(keys::SIM_SHARD_MIGRATIONS, u64::from(outcome.migrated));
        }
        if outcome.held > 0 {
            telemetry::counter_add(keys::SIM_SHARD_HELD, u64::from(outcome.held));
        }
        telemetry::gauge_set(keys::SIM_SHARD_COUNT, shard_count as f64);
        telemetry::gauge_set(keys::SIM_VEHICLES, self.vehicle_count() as f64);
        self.step_count += 1;
        outcome
    }

    /// Applies boundary crossings in submission order: insert into the
    /// successor lane when its merge pocket is clear, otherwise hold the
    /// vehicle at the source boundary (a ramp-meter queue). Serial and
    /// order-deterministic, so the shard partition never leaks in.
    fn apply_migrations(&mut self, migrations: Vec<Migration>) -> (u32, u32) {
        const MERGE_GAP: f64 = 0.5;
        let (mut migrated, mut held) = (0u32, 0u32);
        for m in migrations {
            let src_len = self.net.segments[m.from].length;
            let mut v = m.vehicle;
            let entry_pos = v.pos - src_len;
            let pocket_blocked = self.segs[m.to].vehicles.iter().any(|o| {
                o.lane == m.to_lane
                    && o.rear() < entry_pos + MERGE_GAP
                    && o.pos > entry_pos - v.length - MERGE_GAP
            });
            if pocket_blocked {
                // Hold at the boundary: rear bumper exactly at the segment
                // end, stopped. Re-attempts the merge once it moves again.
                v.pos = src_len + v.length;
                v.vel = 0.0;
                v.accel = 0.0;
                self.segs[m.from].vehicles.push(v);
                held += 1;
            } else {
                v.pos = entry_pos;
                v.lane = m.to_lane;
                v.seg = SegmentId(m.to as u32);
                self.segs[m.to].vehicles.push(v);
                migrated += 1;
            }
        }
        (migrated, held)
    }

    /// Tries to re-inject queued vehicles at one entry segment's origin.
    fn try_respawn_seg(&mut self, e: usize) {
        let entry_pos = self.cfg.vehicle_len + 1.0;
        let seg_lanes = self.net.segments[e].lanes;
        let v_max = self.cfg.v_max;
        let mut placements: Vec<(usize, f64, DriverParams)> = Vec::new();
        {
            let state = &mut self.segs[e];
            let mut remaining = state.pending_respawns;
            if remaining == 0 {
                return;
            }
            let mut lanes: Vec<usize> = (0..seg_lanes).collect();
            // Rotate the starting lane so injection is spread across lanes.
            let start = (state.rng.random::<u32>() as usize) % seg_lanes;
            lanes.rotate_left(start);
            for lane in lanes {
                if remaining == 0 {
                    break;
                }
                let min_entry_gap = 8.0;
                let blocked = state
                    .vehicles
                    .iter()
                    .any(|v| v.lane == lane && v.rear() < entry_pos + min_entry_gap);
                if blocked {
                    continue;
                }
                let driver = DriverParams::sample(&mut state.rng, v_max);
                let lead_vel = leader_in(&state.vehicles, lane, entry_pos, VehicleId(u64::MAX))
                    .map(|l| l.vel)
                    .unwrap_or(driver.desired_speed);
                let vel = lead_vel.min(driver.desired_speed).max(3.0);
                placements.push((lane, vel, driver));
                remaining -= 1;
            }
            state.pending_respawns = remaining;
        }
        for (lane, vel, driver) in placements {
            self.insert_vehicle(e, lane, entry_pos, vel, self.cfg.conventional, driver);
        }
    }
}

/// Nearest vehicle ahead of `pos` in `lane` (excluding `exclude`).
fn leader_in(vehicles: &[Vehicle], lane: usize, pos: f64, exclude: VehicleId) -> Option<&Vehicle> {
    vehicles
        .iter()
        .filter(|v| v.lane == lane && v.id != exclude && v.pos > pos)
        .min_by(|a, b| a.pos.total_cmp(&b.pos))
}

/// Nearest vehicle behind `pos` in `lane` (excluding `exclude`).
fn follower_in(
    vehicles: &[Vehicle],
    lane: usize,
    pos: f64,
    exclude: VehicleId,
) -> Option<&Vehicle> {
    vehicles
        .iter()
        .filter(|v| v.lane == lane && v.id != exclude && v.pos <= pos)
        .max_by(|a, b| a.pos.total_cmp(&b.pos))
}

/// Per-lane vehicle indices sorted by increasing position.
fn lane_order(vehicles: &[Vehicle], lanes: usize) -> Vec<Vec<usize>> {
    let mut order = vec![Vec::new(); lanes];
    for (i, v) in vehicles.iter().enumerate() {
        order[v.lane].push(i);
    }
    for lane in &mut order {
        lane.sort_by(|&a, &b| {
            vehicles[a]
                .pos
                .total_cmp(&vehicles[b].pos)
                .then(vehicles[a].id.cmp(&vehicles[b].id))
        });
    }
    order
}

/// Leader/follower context of vehicle `vi` in `lane`, falling back to the
/// lane's ghost leader when no in-segment leader exists.
fn context_for(
    vehicles: &[Vehicle],
    order: &[Vec<usize>],
    vi: usize,
    lane: usize,
    ghosts: &[Option<GhostLeader>],
) -> LaneContext {
    let v = &vehicles[vi];
    let lane_order = &order[lane];
    // Position of the first vehicle in `lane_order` strictly ahead of v.pos.
    let split = lane_order.partition_point(|&oi| {
        let o = &vehicles[oi];
        o.pos < v.pos || (o.pos == v.pos && o.id <= v.id)
    });
    let leader = lane_order[split..]
        .iter()
        .map(|&oi| &vehicles[oi])
        .find(|o| o.id != v.id)
        .map(|o| LeaderView {
            gap: v.gap_to(o),
            vel: o.vel,
        })
        .or_else(|| {
            ghosts.get(lane).copied().flatten().map(|g| LeaderView {
                gap: g.rear_pos - v.pos,
                vel: g.vel,
            })
        });
    let follower = lane_order[..split]
        .iter()
        .rev()
        .map(|&oi| &vehicles[oi])
        .find(|o| o.id != v.id)
        .map(|o| FollowerView {
            gap: o.gap_to(v),
            vel: o.vel,
            decel: o.driver.decel,
            driver: o.driver,
        });
    LaneContext { leader, follower }
}

/// Steps one segment purely locally: lane changes, car-following (dawdle
/// draws from the segment's own RNG stream), trapezoidal integration,
/// collision detection, and exit classification. All cross-segment reads
/// come from the pre-step `ghosts` snapshot, so this function is a pure
/// function of `(cfg, seg, state, ghosts, commands)` — the shard partition
/// cannot influence its output.
fn step_segment(
    cfg: &SimConfig,
    seg: &Segment,
    seg_idx: usize,
    state: &mut SegmentState,
    ghosts: &[Option<GhostLeader>],
    commands: &BTreeMap<VehicleId, ExternalCommand>,
) -> SegOut {
    let mut out = SegOut::default();
    let seg_id = SegmentId(seg_idx as u32);
    let order = lane_order(&state.vehicles, seg.lanes);

    // --- Phase 1: lane-change decisions -----------------------------
    let lc_span = telemetry::span!(keys::SPAN_LANE_CHANGE);
    let mut changes: Vec<(usize, i32)> = Vec::new();
    for vi in 0..state.vehicles.len() {
        let v = &state.vehicles[vi];
        match v.controller {
            Controller::External => {
                let cmd = commands.get(&v.id).copied().unwrap_or_default();
                let delta = match cmd.lane_change {
                    LaneChange::Keep => 0,
                    LaneChange::Left => -1,
                    LaneChange::Right => 1,
                };
                if delta != 0 {
                    let target = v.lane as i32 + delta;
                    if target < 0 || target >= seg.lanes as i32 {
                        // Hitting the road boundary is a collision.
                        out.collisions.push(CollisionEvent {
                            vehicle: v.id,
                            other: None,
                            seg: seg_id,
                            pos: v.pos,
                        });
                    } else {
                        changes.push((vi, delta));
                    }
                }
            }
            _ => {
                if v.lc_cooldown > 0 {
                    continue;
                }
                let current = context_for(&state.vehicles, &order, vi, v.lane, ghosts);
                let left = (v.lane > 0)
                    .then(|| context_for(&state.vehicles, &order, vi, v.lane - 1, ghosts));
                let right = (v.lane + 1 < seg.lanes)
                    .then(|| context_for(&state.vehicles, &order, vi, v.lane + 1, ghosts));
                match mobil_decision(v, current, left, right) {
                    LaneChange::Keep => {}
                    LaneChange::Left => changes.push((vi, -1)),
                    LaneChange::Right => changes.push((vi, 1)),
                }
            }
        }
    }
    // Apply changes in descending position order, re-validating gaps in
    // the target lane against the *live* state so two vehicles cannot
    // merge into the same pocket in one step.
    changes.sort_by(|a, b| state.vehicles[b.0].pos.total_cmp(&state.vehicles[a.0].pos));
    for (vi, delta) in changes {
        let v = &state.vehicles[vi];
        let target = (v.lane as i32 + delta) as usize;
        let safe = if matches!(v.controller, Controller::External) {
            true // the AV may command unsafe changes; collisions are detected below
        } else {
            let leader_ok =
                leader_in(&state.vehicles, target, v.pos, v.id).map_or(true, |l| v.gap_to(l) > 0.5);
            let follower_ok = follower_in(&state.vehicles, target, v.pos, v.id)
                .map_or(true, |f| f.gap_to(v) > 0.5);
            leader_ok && follower_ok
        };
        if safe {
            let cooldown = cfg.lc_cooldown_steps;
            let v = &mut state.vehicles[vi];
            v.lane = target;
            v.lc_cooldown = cooldown;
        }
    }

    drop(lc_span);

    // --- Phase 2: longitudinal control -------------------------------
    let cf_span = telemetry::span!(keys::SPAN_CAR_FOLLOWING);
    let order = lane_order(&state.vehicles, seg.lanes);
    let mut accels = vec![0.0_f64; state.vehicles.len()];
    for (vi, slot) in accels.iter_mut().enumerate() {
        let ctx = {
            let v = &state.vehicles[vi];
            context_for(&state.vehicles, &order, vi, v.lane, ghosts)
        };
        let v = &state.vehicles[vi];
        let a = match v.controller {
            Controller::Idm => idm_accel(&v.driver, v.vel, ctx.leader),
            Controller::Krauss => {
                let dawdle = state.rng.random::<f64>();
                krauss_accel(&v.driver, v.vel, ctx.leader, cfg.dt, dawdle)
            }
            Controller::Acc => acc_accel(&v.driver, v.vel, ctx.leader),
            Controller::External => {
                let a = commands.get(&v.id).copied().unwrap_or_default().accel;
                if a.is_finite() {
                    a
                } else {
                    // A corrupted command must not poison the physics;
                    // coast instead and report it.
                    out.sanitized += 1;
                    0.0
                }
            }
        };
        let max_decel = if matches!(v.controller, Controller::External) {
            cfg.a_max
        } else {
            cfg.emergency_decel
        };
        *slot = a.clamp(-max_decel, cfg.a_max);
    }

    drop(cf_span);

    // --- Phase 3: integration ----------------------------------------
    let int_span = telemetry::span!(keys::SPAN_INTEGRATE);
    let dt = cfg.dt;
    for (vi, v) in state.vehicles.iter_mut().enumerate() {
        let v_floor = if matches!(v.controller, Controller::External) {
            cfg.v_min
        } else {
            0.0
        };
        let v_next = (v.vel + accels[vi] * dt).clamp(v_floor, cfg.v_max);
        let pos_next = v.pos + (v.vel + v_next) * 0.5 * dt;
        if !v_next.is_finite() || !pos_next.is_finite() {
            // Freeze rather than integrate a non-finite state: hold the
            // position, stop the vehicle, and report it so the owner can
            // terminate the episode.
            v.vel = if v.vel.is_finite() { v.vel } else { 0.0 };
            v.accel = 0.0;
            v.lc_cooldown = v.lc_cooldown.saturating_sub(1);
            out.non_finite.push(v.id);
            continue;
        }
        let eff_accel = (v_next - v.vel) / dt;
        v.pos = pos_next;
        v.vel = v_next;
        v.accel = eff_accel;
        v.lc_cooldown = v.lc_cooldown.saturating_sub(1);
    }

    drop(int_span);

    // --- Phase 4: collision detection ---------------------------------
    let col_span = telemetry::span!(keys::SPAN_COLLISION);
    let order = lane_order(&state.vehicles, seg.lanes);
    for lane in &order {
        for pair in lane.windows(2) {
            let (f, l) = (pair[0], pair[1]);
            if state.vehicles[f].gap_to(&state.vehicles[l]) < 0.0 {
                out.collisions.push(CollisionEvent {
                    vehicle: state.vehicles[f].id,
                    other: Some(state.vehicles[l].id),
                    seg: seg_id,
                    pos: state.vehicles[f].pos,
                });
                state.vehicles[f].collided = true;
                state.vehicles[l].collided = true;
            }
        }
    }
    for ci in 0..out.collisions.len() {
        let ev = out.collisions[ci];
        if ev.other.is_none() {
            if let Some(v) = state.vehicles.iter_mut().find(|v| v.id == ev.vehicle) {
                v.collided = true;
            }
        }
    }

    drop(col_span);

    // --- Phase 5: exit classification ----------------------------------
    let rc_span = telemetry::span!(keys::SPAN_RECYCLE);
    let seg_len = seg.length;
    if state.vehicles.iter().any(|v| v.rear() > seg_len) {
        let mut kept = Vec::with_capacity(state.vehicles.len());
        for v in state.vehicles.drain(..) {
            if v.rear() <= seg_len {
                kept.push(v);
                continue;
            }
            match seg.links.get(v.lane).copied().flatten() {
                Some(link) => out.migrations.push(Migration {
                    vehicle: v,
                    from: seg_idx,
                    to: link.to.0 as usize,
                    to_lane: link.lane,
                }),
                None => {
                    if matches!(v.controller, Controller::External) {
                        out.exited_external.push(v.id);
                        kept.push(v); // the owner decides when to remove it
                    } else {
                        out.recycled += 1;
                    }
                }
            }
        }
        state.vehicles = kept;
    }
    drop(rc_span);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            road_len: 500.0,
            lanes: 3,
            density_per_km: 90.0,
            seed,
            ..SimConfig::default()
        }
    }

    #[test]
    fn populate_reaches_target_density() {
        let mut sim = Simulation::new(small_cfg(1));
        sim.populate();
        let target = (90.0 * 0.5) as usize;
        let n = sim.vehicle_count();
        assert!(
            n >= target * 8 / 10 && n <= target,
            "expected ~{target} vehicles, got {n}"
        );
    }

    #[test]
    fn conventional_traffic_is_collision_free() {
        let mut sim = Simulation::new(small_cfg(2));
        sim.populate();
        for _ in 0..400 {
            let out = sim.step();
            assert!(
                out.collisions.is_empty(),
                "conventional traffic collided: {:?}",
                out.collisions
            );
        }
    }

    #[test]
    fn speeds_and_positions_stay_legal() {
        let mut sim = Simulation::new(small_cfg(3));
        sim.populate();
        for _ in 0..200 {
            sim.step();
            for v in sim.vehicles() {
                assert!(v.vel >= 0.0 && v.vel <= sim.cfg().v_max + 1e-9);
                assert!(v.lane < sim.cfg().lanes);
                assert!(v.pos.is_finite());
            }
        }
    }

    #[test]
    fn external_vehicle_obeys_commands() {
        let mut sim = Simulation::new(small_cfg(4));
        let id = sim.spawn_external(1, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Left,
                accel: 2.0,
            },
        );
        sim.step();
        let v = sim.get(id).unwrap();
        assert_eq!(v.lane, 0);
        assert!((v.vel - 11.0).abs() < 1e-9);
        // Position advanced by the trapezoidal rule: (10 + 11)/2 * 0.5.
        assert!((v.pos - (50.0 + 10.5 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn external_accel_is_clamped() {
        let mut sim = Simulation::new(small_cfg(5));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: 99.0,
            },
        );
        sim.step();
        let v = sim.get(id).unwrap();
        assert!(
            (v.vel - (10.0 + 3.0 * 0.5)).abs() < 1e-9,
            "accel must clamp to a_max"
        );
    }

    #[test]
    fn external_speed_floor_is_v_min() {
        let mut sim = Simulation::new(small_cfg(6));
        let id = sim.spawn_external(0, 50.0, 2.0);
        for _ in 0..10 {
            sim.set_command(
                id,
                ExternalCommand {
                    lane_change: LaneChange::Keep,
                    accel: -3.0,
                },
            );
            sim.step();
        }
        let v = sim.get(id).unwrap();
        assert!((v.vel - sim.cfg().v_min).abs() < 1e-9);
    }

    #[test]
    fn nan_command_is_sanitized_to_coasting() {
        let mut sim = Simulation::new(small_cfg(41));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: f64::NAN,
            },
        );
        let out = sim.step();
        assert_eq!(out.sanitized_commands, 1);
        assert!(out.non_finite.is_empty());
        let v = sim.get(id).unwrap();
        assert!(
            (v.vel - 10.0).abs() < 1e-9,
            "NaN accel must coast, not corrupt"
        );
        assert!(v.pos.is_finite());
    }

    #[test]
    fn infinite_command_is_sanitized_to_coasting() {
        let mut sim = Simulation::new(small_cfg(42));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: f64::INFINITY,
            },
        );
        let out = sim.step();
        assert_eq!(out.sanitized_commands, 1);
        assert!(sim.get(id).unwrap().vel.is_finite());
    }

    #[test]
    fn non_finite_vehicle_is_frozen_and_reported() {
        let mut sim = Simulation::new(small_cfg(43));
        let id = sim.spawn_external(0, 50.0, f64::NAN);
        let out = sim.step();
        assert_eq!(out.non_finite, vec![id]);
        let v = sim.get(id).unwrap();
        assert!(
            (v.pos - 50.0).abs() < 1e-9,
            "frozen vehicle holds its position"
        );
        assert_eq!(v.vel, 0.0, "non-finite velocity is stopped");
        // The next step integrates normally again.
        let out = sim.step();
        assert!(out.non_finite.is_empty());
    }

    #[test]
    fn ordering_survives_non_finite_positions() {
        // total_cmp ordering must not panic even with a NaN position in
        // the lane (it sorts NaN to one end deterministically).
        let mut sim = Simulation::new(small_cfg(44));
        let a = sim.spawn_external(0, f64::NAN, 10.0);
        let b = sim.spawn_external(0, 60.0, 10.0);
        let _ = sim.step();
        let leader = sim
            .leader_in_lane(0, 10.0, a)
            .expect("finite vehicle is ahead");
        assert_eq!(leader.id, b);
        let _ = sim.follower_in_lane(0, 1e9, a);
    }

    #[test]
    fn boundary_violation_is_a_collision() {
        let mut sim = Simulation::new(small_cfg(7));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Left,
                accel: 0.0,
            },
        );
        let out = sim.step();
        assert_eq!(out.collisions.len(), 1);
        assert_eq!(out.collisions[0].vehicle, id);
        assert!(out.collisions[0].other.is_none());
        assert_eq!(out.collisions[0].seg, SegmentId(0));
    }

    #[test]
    fn rear_end_collision_detected() {
        let mut sim = Simulation::new(small_cfg(8));
        let id = sim.spawn_external(0, 50.0, 25.0);
        // A stationary conventional vehicle dead ahead.
        sim.insert_vehicle(0, 0, 58.0, 0.0, Controller::Idm, DriverParams::nominal());
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: 3.0,
            },
        );
        let mut collided = false;
        for _ in 0..4 {
            sim.set_command(
                id,
                ExternalCommand {
                    lane_change: LaneChange::Keep,
                    accel: 3.0,
                },
            );
            let out = sim.step();
            if out
                .collisions
                .iter()
                .any(|c| c.vehicle == id || c.other == Some(id))
            {
                collided = true;
                break;
            }
        }
        assert!(
            collided,
            "driving full throttle into a parked car must collide"
        );
    }

    #[test]
    fn exit_reported_for_external() {
        let mut sim = Simulation::new(small_cfg(9));
        let id = sim.spawn_external(0, 495.0, 25.0);
        let mut exited = false;
        for _ in 0..5 {
            sim.set_command(
                id,
                ExternalCommand {
                    lane_change: LaneChange::Keep,
                    accel: 0.0,
                },
            );
            let out = sim.step();
            if out.exited_external.contains(&id) {
                exited = true;
                break;
            }
        }
        assert!(exited);
    }

    #[test]
    fn conventional_exits_are_recycled() {
        let mut sim = Simulation::new(small_cfg(10));
        sim.populate();
        let before = sim.vehicle_count();
        for _ in 0..600 {
            sim.step();
        }
        let after = sim.vehicle_count();
        // Density maintained within a small tolerance (respawns can queue).
        assert!(
            after as f64 >= before as f64 * 0.85,
            "density decayed: {before} -> {after}"
        );
    }

    #[test]
    fn determinism_same_seed_same_trajectories() {
        let run = |seed| {
            let mut sim = Simulation::new(small_cfg(seed));
            sim.populate();
            for _ in 0..100 {
                sim.step();
            }
            sim.vehicles()
                .map(|v| (v.id, v.lane, v.pos.to_bits(), v.vel.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn leader_follower_queries() {
        let mut sim = Simulation::new(small_cfg(11));
        sim.insert_vehicle(0, 0, 100.0, 10.0, Controller::Idm, DriverParams::nominal());
        sim.insert_vehicle(0, 0, 200.0, 10.0, Controller::Idm, DriverParams::nominal());
        sim.insert_vehicle(0, 0, 300.0, 10.0, Controller::Idm, DriverParams::nominal());
        let probe = VehicleId(u64::MAX);
        assert_eq!(sim.leader_in_lane(0, 150.0, probe).unwrap().pos, 200.0);
        assert_eq!(sim.follower_in_lane(0, 150.0, probe).unwrap().pos, 100.0);
        assert!(sim.leader_in_lane(1, 150.0, probe).is_none());
    }

    #[test]
    fn spawn_external_clears_pocket() {
        let mut sim = Simulation::new(small_cfg(12));
        sim.insert_vehicle(0, 2, 101.0, 10.0, Controller::Idm, DriverParams::nominal());
        let id = sim.spawn_external(2, 100.0, 10.0);
        let av = sim.get(id).unwrap();
        for v in sim.vehicles() {
            if v.id != id && v.lane == av.lane {
                assert!((v.pos - av.pos).abs() > sim.cfg().vehicle_len);
            }
        }
    }

    // ---- multi-segment / sharding tests ------------------------------

    fn corridor_cfg(seed: u64, lengths: &[f64], lanes: usize) -> SimConfig {
        SimConfig {
            lanes,
            density_per_km: 90.0,
            seed,
            network: Some(RoadNetwork::corridor(lengths, lanes)),
            ..SimConfig::default()
        }
    }

    #[test]
    fn boundary_crossing_is_never_duplicated_or_dropped() {
        let mut sim = Simulation::new(corridor_cfg(21, &[200.0, 200.0], 2));
        let id = sim.spawn_external(0, 190.0, 20.0);
        let mut seen_on_second = false;
        for _ in 0..20 {
            sim.set_command(
                id,
                ExternalCommand {
                    lane_change: LaneChange::Keep,
                    accel: 0.0,
                },
            );
            let out = sim.step();
            assert!(out.exited_external.is_empty(), "corridor has no exit yet");
            // The vehicle must exist exactly once in the whole world.
            let copies = sim.vehicles().filter(|v| v.id == id).count();
            assert_eq!(copies, 1, "migration duplicated or dropped the vehicle");
            let v = sim.get(id).unwrap();
            assert!(v.pos <= 200.0 + v.length + 1e-9);
            if v.seg == SegmentId(1) {
                seen_on_second = true;
            }
        }
        assert!(seen_on_second, "vehicle never migrated to segment 1");
    }

    #[test]
    fn migration_preserves_continuous_position() {
        let mut sim = Simulation::new(corridor_cfg(22, &[200.0, 200.0], 2));
        let id = sim.spawn_external(1, 196.0, 20.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: 0.0,
            },
        );
        // One step moves the front bumper to 206; the rear (201) crosses
        // the 200 m boundary, so the vehicle migrates to (seg 1, pos 6).
        sim.step();
        let v = sim.get(id).unwrap();
        assert_eq!(v.seg, SegmentId(1));
        assert_eq!(v.lane, 1);
        assert!((v.pos - 6.0).abs() < 1e-9, "pos {} not translated", v.pos);
    }

    #[test]
    fn blocked_merge_pocket_holds_the_vehicle() {
        let mut sim = Simulation::new(corridor_cfg(23, &[200.0, 200.0], 2));
        // A parked conventional vehicle just past the boundary in lane 0.
        sim.insert_vehicle(1, 0, 6.0, 0.0, Controller::Acc, DriverParams::nominal());
        let id = sim.spawn_external(0, 196.0, 20.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: 0.0,
            },
        );
        let out = sim.step();
        assert_eq!(out.held, 1, "occupied pocket must hold the merge");
        let v = sim.get(id).unwrap();
        assert_eq!(v.seg, SegmentId(0), "held vehicle stays on its segment");
        assert!((v.rear() - 200.0).abs() < 1e-9, "held at the boundary");
        assert_eq!(v.vel, 0.0);
        let copies = sim.vehicles().filter(|v| v.id == id).count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn sharded_corridor_is_byte_identical_to_serial() {
        let run = |shards: usize| {
            let mut sim = Simulation::new(corridor_cfg(
                24,
                &[300.0, 300.0, 300.0, 300.0, 300.0, 300.0],
                3,
            ));
            sim.set_shards(shards);
            sim.populate();
            for _ in 0..200 {
                sim.step();
            }
            sim.state_checksum()
        };
        let serial = run(1);
        assert_eq!(run(2), serial, "2-shard run diverged from serial");
        assert_eq!(run(4), serial, "4-shard run diverged from serial");
        assert_eq!(run(6), serial, "6-shard run diverged from serial");
    }

    #[test]
    fn ramp_network_steps_collision_free_and_deterministic() {
        let cfg = SimConfig {
            lanes: 3,
            density_per_km: 60.0,
            seed: 25,
            network: Some(RoadNetwork::with_ramps(&[400.0, 400.0, 400.0], 3, 150.0)),
            ..SimConfig::default()
        };
        let run = |shards: usize| {
            let mut sim = Simulation::new(cfg.clone());
            sim.set_shards(shards);
            sim.populate();
            for _ in 0..300 {
                sim.step();
            }
            sim.state_checksum()
        };
        assert_eq!(run(1), run(3), "ramp world diverged across shard counts");
    }

    #[test]
    fn per_segment_populate_scales_with_segment_length() {
        let cfg = SimConfig {
            lanes: 2,
            density_per_km: 90.0,
            seed: 26,
            network: Some(RoadNetwork::with_ramps(&[500.0, 500.0], 2, 100.0)),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg);
        sim.populate();
        // The 100 m one-lane ramps must get ~9 vehicles, not the 500 m
        // mainline target.
        for ramp in [2usize, 3] {
            let n = sim.segment_vehicles(SegmentId(ramp as u32)).len();
            assert!(n <= 9, "ramp segment {ramp} overfilled: {n} vehicles");
        }
        assert!(sim.segment_vehicles(SegmentId(0)).len() > 30);
    }

    #[test]
    fn degenerate_network_matches_implicit_single_segment() {
        // cfg.network = single(road_len, lanes) must be byte-identical to
        // cfg.network = None.
        let implicit = {
            let mut sim = Simulation::new(small_cfg(27));
            sim.populate();
            for _ in 0..100 {
                sim.step();
            }
            sim.state_checksum()
        };
        let explicit = {
            let mut cfg = small_cfg(27);
            cfg.network = Some(RoadNetwork::single(cfg.road_len, cfg.lanes));
            let mut sim = Simulation::new(cfg);
            sim.populate();
            for _ in 0..100 {
                sim.step();
            }
            sim.state_checksum()
        };
        assert_eq!(implicit, explicit);
    }
}
