//! The simulation core: a straight multi-lane road, discrete 0.5 s steps,
//! heterogeneous model-controlled traffic, and a TraCI-like command
//! interface for externally controlled vehicles.

use crate::models::{
    acc_accel, idm_accel, krauss_accel, mobil_decision, FollowerView, LaneChange, LaneContext,
    LeaderView,
};
use crate::vehicle::{Controller, DriverParams, Vehicle, VehicleId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use telemetry::keys;

/// Static configuration of a simulation run.
///
/// Defaults follow the paper's experimental settings (§V-A): a six-lane
/// 3 km road, 3.2 m lanes, Δt = 0.5 s, speed limits 5–90 km/h, |a| ≤ 3 m/s²,
/// and 180 vehicles per kilometre of road.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of lanes (κ). Lane 0 is the leftmost.
    pub lanes: usize,
    /// Road length, m.
    pub road_len: f64,
    /// Lane width, m.
    pub lane_width: f64,
    /// Step length Δt, s.
    pub dt: f64,
    /// Minimum speed for externally controlled vehicles, m/s.
    pub v_min: f64,
    /// Speed limit, m/s.
    pub v_max: f64,
    /// Legal acceleration bound a', m/s².
    pub a_max: f64,
    /// Target traffic density over the whole road, vehicles per km.
    pub density_per_km: f64,
    /// Vehicle body length, m.
    pub vehicle_len: f64,
    /// Steps a vehicle must wait between lane changes.
    pub lc_cooldown_steps: u32,
    /// Controller for conventional traffic.
    pub conventional: Controller,
    /// Emergency deceleration available to conventional traffic, m/s².
    ///
    /// The paper's ±a' restriction constrains the *autonomous* vehicle's
    /// policy; physical vehicles can brake harder in emergencies (SUMO uses
    /// 9 m/s² by default).
    pub emergency_decel: f64,
    /// RNG seed; every run with the same seed is bit-identical.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            lanes: 6,
            road_len: 3000.0,
            lane_width: 3.2,
            dt: 0.5,
            v_min: 5.0 / 3.6,
            v_max: 25.0,
            a_max: 3.0,
            density_per_km: 180.0,
            vehicle_len: 5.0,
            lc_cooldown_steps: 4,
            conventional: Controller::Krauss,
            emergency_decel: 9.0,
            seed: 0,
        }
    }
}

/// Command applied to an externally controlled vehicle on the next step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExternalCommand {
    /// Lateral lane-change behaviour.
    pub lane_change: LaneChange,
    /// Longitudinal acceleration, m/s² (clamped to ±`a_max`).
    pub accel: f64,
}

impl Default for ExternalCommand {
    fn default() -> Self {
        Self {
            lane_change: LaneChange::Keep,
            accel: 0.0,
        }
    }
}

/// A collision detected during a step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollisionEvent {
    /// The rear (striking) vehicle, or the vehicle that left the road.
    pub vehicle: VehicleId,
    /// The struck vehicle; `None` for a road-boundary violation.
    pub other: Option<VehicleId>,
    /// Longitudinal position of the event, m.
    pub pos: f64,
}

/// Everything that happened during one [`Simulation::step`].
#[derive(Clone, Debug, Default)]
pub struct StepOutcome {
    /// Collisions detected this step.
    pub collisions: Vec<CollisionEvent>,
    /// Externally controlled vehicles that crossed the road end this step.
    pub exited_external: Vec<VehicleId>,
    /// External commands whose acceleration was non-finite this step and
    /// was replaced by 0 (coasting) instead of corrupting the integration.
    pub sanitized_commands: u32,
    /// Vehicles frozen this step because integrating them would have
    /// produced a non-finite position or velocity.
    pub non_finite: Vec<VehicleId>,
}

/// A microscopic multi-lane traffic simulation.
pub struct Simulation {
    cfg: SimConfig,
    vehicles: Vec<Vehicle>,
    index: BTreeMap<VehicleId, usize>,
    commands: BTreeMap<VehicleId, ExternalCommand>,
    next_id: u64,
    step_count: u64,
    pending_respawns: usize,
    rng: ChaCha12Rng,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            vehicles: Vec::new(),
            index: BTreeMap::new(),
            commands: BTreeMap::new(),
            next_id: 0,
            step_count: 0,
            pending_respawns: 0,
            rng,
        }
    }

    /// Configuration in effect.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of steps executed.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Simulation clock, s.
    pub fn time(&self) -> f64 {
        self.step_count as f64 * self.cfg.dt
    }

    /// All vehicles currently on the road.
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Looks up a vehicle by id.
    pub fn get(&self, id: VehicleId) -> Option<&Vehicle> {
        self.index.get(&id).map(|&i| &self.vehicles[i])
    }

    /// Fills the road with conventional traffic at the configured density.
    ///
    /// Vehicles are placed with jittered spacing and heterogeneous drivers,
    /// each starting near its desired speed.
    pub fn populate(&mut self) {
        let target = (self.cfg.density_per_km * self.cfg.road_len / 1000.0).round() as usize;
        let per_lane = target / self.cfg.lanes;
        let spacing = self.cfg.road_len / (per_lane.max(1)) as f64;
        for lane in 0..self.cfg.lanes {
            let mut pos = self.cfg.vehicle_len + self.rng.random_range(0.0..spacing * 0.5);
            let mut placements = Vec::with_capacity(per_lane);
            for _ in 0..per_lane {
                let driver = DriverParams::sample(&mut self.rng, self.cfg.v_max);
                let vel = driver.desired_speed * self.rng.random_range(0.7..1.0);
                placements.push((pos, vel, driver));
                pos += spacing * self.rng.random_range(0.8..1.2);
                if pos > self.cfg.road_len {
                    break;
                }
            }
            // Cap each follower's initial speed by the Krauss safe speed
            // w.r.t. its leader so the safe-speed invariant holds from
            // step 0 even at high densities.
            for i in (0..placements.len().saturating_sub(1)).rev() {
                let (leader_pos, leader_vel, _) = placements[i + 1];
                let (pos, vel, driver) = &mut placements[i];
                let gap = (leader_pos - self.cfg.vehicle_len - *pos - driver.min_gap).max(0.0);
                let b = driver.decel;
                let tau = driver.headway;
                let v_safe =
                    -b * tau + (b * b * tau * tau + leader_vel * leader_vel + 2.0 * b * gap).sqrt();
                *vel = vel.min(v_safe.max(0.0));
            }
            for (pos, vel, driver) in placements {
                self.insert_vehicle(lane, pos, vel, self.cfg.conventional, driver);
            }
        }
    }

    /// Runs `steps` plain steps (used to let traffic settle before an
    /// episode starts).
    pub fn warm_up(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    fn insert_vehicle(
        &mut self,
        lane: usize,
        pos: f64,
        vel: f64,
        controller: Controller,
        driver: DriverParams,
    ) -> VehicleId {
        let id = VehicleId(self.next_id);
        self.next_id += 1;
        self.vehicles.push(Vehicle {
            id,
            lane,
            pos,
            vel,
            accel: 0.0,
            length: self.cfg.vehicle_len,
            controller,
            driver,
            collided: false,
            lc_cooldown: 0,
        });
        self.index.insert(id, self.vehicles.len() - 1);
        id
    }

    /// Inserts an externally controlled vehicle, clearing a safe pocket
    /// around it (any conventional vehicle overlapping the pocket is moved
    /// downstream). Returns the new vehicle's id.
    pub fn spawn_external(&mut self, lane: usize, pos: f64, vel: f64) -> VehicleId {
        assert!(lane < self.cfg.lanes, "lane out of range");
        let pocket = 2.5 * self.cfg.vehicle_len;
        // Remove conventional vehicles overlapping the pocket in this lane.
        let keep: Vec<Vehicle> = self
            .vehicles
            .drain(..)
            .filter(|v| !(v.lane == lane && (v.pos - pos).abs() < pocket + v.length))
            .collect();
        self.vehicles = keep;
        self.reindex();
        self.insert_vehicle(
            lane,
            pos,
            vel,
            Controller::External,
            DriverParams::nominal(),
        )
    }

    /// Removes a vehicle (e.g. a finished external agent).
    pub fn remove(&mut self, id: VehicleId) {
        if let Some(&i) = self.index.get(&id) {
            self.vehicles.swap_remove(i);
            self.reindex();
            self.commands.remove(&id);
        }
    }

    fn reindex(&mut self) {
        self.index = self
            .vehicles
            .iter()
            .enumerate()
            .map(|(i, v)| (v.id, i))
            .collect();
    }

    /// Sets the maneuver an externally controlled vehicle performs on the
    /// next [`Simulation::step`].
    pub fn set_command(&mut self, id: VehicleId, cmd: ExternalCommand) {
        self.commands.insert(id, cmd);
    }

    /// Per-lane vehicle indices sorted by increasing position.
    fn lane_order(&self) -> Vec<Vec<usize>> {
        let mut lanes = vec![Vec::new(); self.cfg.lanes];
        for (i, v) in self.vehicles.iter().enumerate() {
            lanes[v.lane].push(i);
        }
        for lane in &mut lanes {
            lane.sort_by(|&a, &b| {
                self.vehicles[a]
                    .pos
                    .total_cmp(&self.vehicles[b].pos)
                    .then(self.vehicles[a].id.cmp(&self.vehicles[b].id))
            });
        }
        lanes
    }

    /// Nearest vehicle ahead of `pos` in `lane` (excluding `exclude`).
    pub fn leader_in_lane(&self, lane: usize, pos: f64, exclude: VehicleId) -> Option<&Vehicle> {
        self.vehicles
            .iter()
            .filter(|v| v.lane == lane && v.id != exclude && v.pos > pos)
            .min_by(|a, b| a.pos.total_cmp(&b.pos))
    }

    /// Nearest vehicle behind `pos` in `lane` (excluding `exclude`).
    pub fn follower_in_lane(&self, lane: usize, pos: f64, exclude: VehicleId) -> Option<&Vehicle> {
        self.vehicles
            .iter()
            .filter(|v| v.lane == lane && v.id != exclude && v.pos <= pos)
            .max_by(|a, b| a.pos.total_cmp(&b.pos))
    }

    fn context_for(&self, lanes: &[Vec<usize>], vi: usize, lane: usize) -> LaneContext {
        let v = &self.vehicles[vi];
        let order = &lanes[lane];
        // Position of the first vehicle in `order` strictly ahead of v.pos.
        let split = order.partition_point(|&oi| {
            let o = &self.vehicles[oi];
            o.pos < v.pos || (o.pos == v.pos && o.id <= v.id)
        });
        let leader = order[split..]
            .iter()
            .map(|&oi| &self.vehicles[oi])
            .find(|o| o.id != v.id)
            .map(|o| LeaderView {
                gap: v.gap_to(o),
                vel: o.vel,
            });
        let follower = order[..split]
            .iter()
            .rev()
            .map(|&oi| &self.vehicles[oi])
            .find(|o| o.id != v.id)
            .map(|o| FollowerView {
                gap: o.gap_to(v),
                vel: o.vel,
                decel: o.driver.decel,
                driver: o.driver,
            });
        LaneContext { leader, follower }
    }

    /// Advances the simulation by one Δt step.
    pub fn step(&mut self) -> StepOutcome {
        let _step_span = telemetry::span!(keys::SPAN_SIM_STEP);
        let mut outcome = StepOutcome::default();
        let lanes = self.lane_order();

        // --- Phase 1: lane-change decisions -----------------------------
        let lc_span = telemetry::span!(keys::SPAN_LANE_CHANGE);
        let mut changes: Vec<(usize, i32)> = Vec::new();
        for vi in 0..self.vehicles.len() {
            let v = &self.vehicles[vi];
            match v.controller {
                Controller::External => {
                    let cmd = self.commands.get(&v.id).copied().unwrap_or_default();
                    let delta = match cmd.lane_change {
                        LaneChange::Keep => 0,
                        LaneChange::Left => -1,
                        LaneChange::Right => 1,
                    };
                    if delta != 0 {
                        let target = v.lane as i32 + delta;
                        if target < 0 || target >= self.cfg.lanes as i32 {
                            // Hitting the road boundary is a collision.
                            outcome.collisions.push(CollisionEvent {
                                vehicle: v.id,
                                other: None,
                                pos: v.pos,
                            });
                        } else {
                            changes.push((vi, delta));
                        }
                    }
                }
                _ => {
                    if v.lc_cooldown > 0 {
                        continue;
                    }
                    let current = self.context_for(&lanes, vi, v.lane);
                    let left = (v.lane > 0).then(|| self.context_for(&lanes, vi, v.lane - 1));
                    let right = (v.lane + 1 < self.cfg.lanes)
                        .then(|| self.context_for(&lanes, vi, v.lane + 1));
                    match mobil_decision(v, current, left, right) {
                        LaneChange::Keep => {}
                        LaneChange::Left => changes.push((vi, -1)),
                        LaneChange::Right => changes.push((vi, 1)),
                    }
                }
            }
        }
        // Apply changes in descending position order, re-validating gaps in
        // the target lane against the *live* state so two vehicles cannot
        // merge into the same pocket in one step.
        changes.sort_by(|a, b| self.vehicles[b.0].pos.total_cmp(&self.vehicles[a.0].pos));
        for (vi, delta) in changes {
            let v = &self.vehicles[vi];
            let target = (v.lane as i32 + delta) as usize;
            let safe = if matches!(v.controller, Controller::External) {
                true // the AV may command unsafe changes; collisions are detected below
            } else {
                let leader_ok = self
                    .leader_in_lane(target, v.pos, v.id)
                    .map_or(true, |l| v.gap_to(l) > 0.5);
                let follower_ok = self
                    .follower_in_lane(target, v.pos, v.id)
                    .map_or(true, |f| f.gap_to(v) > 0.5);
                leader_ok && follower_ok
            };
            if safe {
                let cooldown = self.cfg.lc_cooldown_steps;
                let v = &mut self.vehicles[vi];
                v.lane = target;
                v.lc_cooldown = cooldown;
            }
        }

        drop(lc_span);

        // --- Phase 2: longitudinal control -------------------------------
        let cf_span = telemetry::span!(keys::SPAN_CAR_FOLLOWING);
        let lanes = self.lane_order();
        let mut accels = vec![0.0_f64; self.vehicles.len()];
        for (vi, slot) in accels.iter_mut().enumerate() {
            let v = &self.vehicles[vi];
            let ctx = self.context_for(&lanes, vi, v.lane);
            let a = match v.controller {
                Controller::Idm => idm_accel(&v.driver, v.vel, ctx.leader),
                Controller::Krauss => {
                    let dawdle = self.rng.random::<f64>();
                    krauss_accel(&v.driver, v.vel, ctx.leader, self.cfg.dt, dawdle)
                }
                Controller::Acc => acc_accel(&v.driver, v.vel, ctx.leader),
                Controller::External => {
                    let a = self.commands.get(&v.id).copied().unwrap_or_default().accel;
                    if a.is_finite() {
                        a
                    } else {
                        // A corrupted command must not poison the physics;
                        // coast instead and report it.
                        outcome.sanitized_commands += 1;
                        0.0
                    }
                }
            };
            let max_decel = if matches!(v.controller, Controller::External) {
                self.cfg.a_max
            } else {
                self.cfg.emergency_decel
            };
            *slot = a.clamp(-max_decel, self.cfg.a_max);
        }

        drop(cf_span);

        // --- Phase 3: integration ----------------------------------------
        let int_span = telemetry::span!(keys::SPAN_INTEGRATE);
        let dt = self.cfg.dt;
        for (vi, v) in self.vehicles.iter_mut().enumerate() {
            let v_floor = if matches!(v.controller, Controller::External) {
                self.cfg.v_min
            } else {
                0.0
            };
            let v_next = (v.vel + accels[vi] * dt).clamp(v_floor, self.cfg.v_max);
            let pos_next = v.pos + (v.vel + v_next) * 0.5 * dt;
            if !v_next.is_finite() || !pos_next.is_finite() {
                // Freeze rather than integrate a non-finite state: hold the
                // position, stop the vehicle, and report it so the owner can
                // terminate the episode.
                v.vel = if v.vel.is_finite() { v.vel } else { 0.0 };
                v.accel = 0.0;
                v.lc_cooldown = v.lc_cooldown.saturating_sub(1);
                outcome.non_finite.push(v.id);
                continue;
            }
            let eff_accel = (v_next - v.vel) / dt;
            v.pos = pos_next;
            v.vel = v_next;
            v.accel = eff_accel;
            v.lc_cooldown = v.lc_cooldown.saturating_sub(1);
        }

        drop(int_span);

        // --- Phase 4: collision detection ---------------------------------
        let col_span = telemetry::span!(keys::SPAN_COLLISION);
        let lanes = self.lane_order();
        for order in &lanes {
            for pair in order.windows(2) {
                let (f, l) = (pair[0], pair[1]);
                if self.vehicles[f].gap_to(&self.vehicles[l]) < 0.0 {
                    outcome.collisions.push(CollisionEvent {
                        vehicle: self.vehicles[f].id,
                        other: Some(self.vehicles[l].id),
                        pos: self.vehicles[f].pos,
                    });
                    self.vehicles[f].collided = true;
                    self.vehicles[l].collided = true;
                }
            }
        }
        for ev in &outcome.collisions {
            if ev.other.is_none() {
                if let Some(&i) = self.index.get(&ev.vehicle) {
                    self.vehicles[i].collided = true;
                }
            }
        }

        drop(col_span);

        // --- Phase 5: recycle exits ----------------------------------------
        let rc_span = telemetry::span!(keys::SPAN_RECYCLE);
        let road_len = self.cfg.road_len;
        let mut exited_external = Vec::new();
        let mut removed = 0usize;
        self.vehicles.retain(|v| {
            if v.rear() <= road_len {
                return true;
            }
            if matches!(v.controller, Controller::External) {
                exited_external.push(v.id);
                return true; // the owner decides when to remove it
            }
            removed += 1;
            false
        });
        self.pending_respawns += removed;
        if removed > 0 || !exited_external.is_empty() {
            self.reindex();
        }
        self.try_respawn();
        outcome.exited_external = exited_external;
        drop(rc_span);

        if !outcome.collisions.is_empty() {
            telemetry::counter_add(keys::SIM_COLLISIONS, outcome.collisions.len() as u64);
        }
        if outcome.sanitized_commands > 0 {
            telemetry::counter_add(
                keys::SIM_SANITIZED_COMMANDS,
                outcome.sanitized_commands as u64,
            );
            telemetry::flight_record(
                keys::SIM_SANITIZED_COMMANDS,
                outcome.sanitized_commands as f64,
            );
        }
        if !outcome.non_finite.is_empty() {
            telemetry::counter_add(keys::SIM_NONFINITE_FROZEN, outcome.non_finite.len() as u64);
            telemetry::flight_record(keys::SIM_NONFINITE_FROZEN, outcome.non_finite.len() as f64);
        }
        telemetry::gauge_set(keys::SIM_VEHICLES, self.vehicles.len() as f64);
        self.step_count += 1;
        outcome
    }

    /// Tries to re-inject queued vehicles at the road origin.
    fn try_respawn(&mut self) {
        let mut remaining = self.pending_respawns;
        if remaining == 0 {
            return;
        }
        let entry_pos = self.cfg.vehicle_len + 1.0;
        let mut lanes: Vec<usize> = (0..self.cfg.lanes).collect();
        // Rotate the starting lane so injection is spread across lanes.
        let start = (self.rng.random::<u32>() as usize) % self.cfg.lanes;
        lanes.rotate_left(start);
        for lane in lanes {
            if remaining == 0 {
                break;
            }
            let min_entry_gap = 8.0;
            let blocked = self
                .vehicles
                .iter()
                .any(|v| v.lane == lane && v.rear() < entry_pos + min_entry_gap);
            if blocked {
                continue;
            }
            let driver = DriverParams::sample(&mut self.rng, self.cfg.v_max);
            let lead_vel = self
                .leader_in_lane(lane, entry_pos, VehicleId(u64::MAX))
                .map(|l| l.vel)
                .unwrap_or(driver.desired_speed);
            let vel = lead_vel.min(driver.desired_speed).max(3.0);
            self.insert_vehicle(lane, entry_pos, vel, self.cfg.conventional, driver);
            remaining -= 1;
        }
        self.pending_respawns = remaining;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            road_len: 500.0,
            lanes: 3,
            density_per_km: 90.0,
            seed,
            ..SimConfig::default()
        }
    }

    #[test]
    fn populate_reaches_target_density() {
        let mut sim = Simulation::new(small_cfg(1));
        sim.populate();
        let target = (90.0 * 0.5) as usize;
        let n = sim.vehicles().len();
        assert!(
            n >= target * 8 / 10 && n <= target,
            "expected ~{target} vehicles, got {n}"
        );
    }

    #[test]
    fn conventional_traffic_is_collision_free() {
        let mut sim = Simulation::new(small_cfg(2));
        sim.populate();
        for _ in 0..400 {
            let out = sim.step();
            assert!(
                out.collisions.is_empty(),
                "conventional traffic collided: {:?}",
                out.collisions
            );
        }
    }

    #[test]
    fn speeds_and_positions_stay_legal() {
        let mut sim = Simulation::new(small_cfg(3));
        sim.populate();
        for _ in 0..200 {
            sim.step();
            for v in sim.vehicles() {
                assert!(v.vel >= 0.0 && v.vel <= sim.cfg().v_max + 1e-9);
                assert!(v.lane < sim.cfg().lanes);
                assert!(v.pos.is_finite());
            }
        }
    }

    #[test]
    fn external_vehicle_obeys_commands() {
        let mut sim = Simulation::new(small_cfg(4));
        let id = sim.spawn_external(1, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Left,
                accel: 2.0,
            },
        );
        sim.step();
        let v = sim.get(id).unwrap();
        assert_eq!(v.lane, 0);
        assert!((v.vel - 11.0).abs() < 1e-9);
        // Position advanced by the trapezoidal rule: (10 + 11)/2 * 0.5.
        assert!((v.pos - (50.0 + 10.5 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn external_accel_is_clamped() {
        let mut sim = Simulation::new(small_cfg(5));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: 99.0,
            },
        );
        sim.step();
        let v = sim.get(id).unwrap();
        assert!(
            (v.vel - (10.0 + 3.0 * 0.5)).abs() < 1e-9,
            "accel must clamp to a_max"
        );
    }

    #[test]
    fn external_speed_floor_is_v_min() {
        let mut sim = Simulation::new(small_cfg(6));
        let id = sim.spawn_external(0, 50.0, 2.0);
        for _ in 0..10 {
            sim.set_command(
                id,
                ExternalCommand {
                    lane_change: LaneChange::Keep,
                    accel: -3.0,
                },
            );
            sim.step();
        }
        let v = sim.get(id).unwrap();
        assert!((v.vel - sim.cfg().v_min).abs() < 1e-9);
    }

    #[test]
    fn nan_command_is_sanitized_to_coasting() {
        let mut sim = Simulation::new(small_cfg(41));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: f64::NAN,
            },
        );
        let out = sim.step();
        assert_eq!(out.sanitized_commands, 1);
        assert!(out.non_finite.is_empty());
        let v = sim.get(id).unwrap();
        assert!(
            (v.vel - 10.0).abs() < 1e-9,
            "NaN accel must coast, not corrupt"
        );
        assert!(v.pos.is_finite());
    }

    #[test]
    fn infinite_command_is_sanitized_to_coasting() {
        let mut sim = Simulation::new(small_cfg(42));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: f64::INFINITY,
            },
        );
        let out = sim.step();
        assert_eq!(out.sanitized_commands, 1);
        assert!(sim.get(id).unwrap().vel.is_finite());
    }

    #[test]
    fn non_finite_vehicle_is_frozen_and_reported() {
        let mut sim = Simulation::new(small_cfg(43));
        let id = sim.spawn_external(0, 50.0, f64::NAN);
        let out = sim.step();
        assert_eq!(out.non_finite, vec![id]);
        let v = sim.get(id).unwrap();
        assert!(
            (v.pos - 50.0).abs() < 1e-9,
            "frozen vehicle holds its position"
        );
        assert_eq!(v.vel, 0.0, "non-finite velocity is stopped");
        // The next step integrates normally again.
        let out = sim.step();
        assert!(out.non_finite.is_empty());
    }

    #[test]
    fn ordering_survives_non_finite_positions() {
        // total_cmp ordering must not panic even with a NaN position in
        // the lane (it sorts NaN to one end deterministically).
        let mut sim = Simulation::new(small_cfg(44));
        let a = sim.spawn_external(0, f64::NAN, 10.0);
        let b = sim.spawn_external(0, 60.0, 10.0);
        let _ = sim.step();
        let leader = sim
            .leader_in_lane(0, 10.0, a)
            .expect("finite vehicle is ahead");
        assert_eq!(leader.id, b);
        let _ = sim.follower_in_lane(0, 1e9, a);
    }

    #[test]
    fn boundary_violation_is_a_collision() {
        let mut sim = Simulation::new(small_cfg(7));
        let id = sim.spawn_external(0, 50.0, 10.0);
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Left,
                accel: 0.0,
            },
        );
        let out = sim.step();
        assert_eq!(out.collisions.len(), 1);
        assert_eq!(out.collisions[0].vehicle, id);
        assert!(out.collisions[0].other.is_none());
    }

    #[test]
    fn rear_end_collision_detected() {
        let mut sim = Simulation::new(small_cfg(8));
        let id = sim.spawn_external(0, 50.0, 25.0);
        // A stationary conventional vehicle dead ahead.
        sim.insert_vehicle(0, 58.0, 0.0, Controller::Idm, DriverParams::nominal());
        sim.set_command(
            id,
            ExternalCommand {
                lane_change: LaneChange::Keep,
                accel: 3.0,
            },
        );
        let mut collided = false;
        for _ in 0..4 {
            sim.set_command(
                id,
                ExternalCommand {
                    lane_change: LaneChange::Keep,
                    accel: 3.0,
                },
            );
            let out = sim.step();
            if out
                .collisions
                .iter()
                .any(|c| c.vehicle == id || c.other == Some(id))
            {
                collided = true;
                break;
            }
        }
        assert!(
            collided,
            "driving full throttle into a parked car must collide"
        );
    }

    #[test]
    fn exit_reported_for_external() {
        let mut sim = Simulation::new(small_cfg(9));
        let id = sim.spawn_external(0, 495.0, 25.0);
        let mut exited = false;
        for _ in 0..5 {
            sim.set_command(
                id,
                ExternalCommand {
                    lane_change: LaneChange::Keep,
                    accel: 0.0,
                },
            );
            let out = sim.step();
            if out.exited_external.contains(&id) {
                exited = true;
                break;
            }
        }
        assert!(exited);
    }

    #[test]
    fn conventional_exits_are_recycled() {
        let mut sim = Simulation::new(small_cfg(10));
        sim.populate();
        let before = sim.vehicles().len();
        for _ in 0..600 {
            sim.step();
        }
        let after = sim.vehicles().len();
        // Density maintained within a small tolerance (respawns can queue).
        assert!(
            after as f64 >= before as f64 * 0.85,
            "density decayed: {before} -> {after}"
        );
    }

    #[test]
    fn determinism_same_seed_same_trajectories() {
        let run = |seed| {
            let mut sim = Simulation::new(small_cfg(seed));
            sim.populate();
            for _ in 0..100 {
                sim.step();
            }
            sim.vehicles()
                .iter()
                .map(|v| (v.id, v.lane, v.pos.to_bits(), v.vel.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn leader_follower_queries() {
        let mut sim = Simulation::new(small_cfg(11));
        sim.insert_vehicle(0, 100.0, 10.0, Controller::Idm, DriverParams::nominal());
        sim.insert_vehicle(0, 200.0, 10.0, Controller::Idm, DriverParams::nominal());
        sim.insert_vehicle(0, 300.0, 10.0, Controller::Idm, DriverParams::nominal());
        let probe = VehicleId(u64::MAX);
        assert_eq!(sim.leader_in_lane(0, 150.0, probe).unwrap().pos, 200.0);
        assert_eq!(sim.follower_in_lane(0, 150.0, probe).unwrap().pos, 100.0);
        assert!(sim.leader_in_lane(1, 150.0, probe).is_none());
    }

    #[test]
    fn spawn_external_clears_pocket() {
        let mut sim = Simulation::new(small_cfg(12));
        sim.insert_vehicle(2, 101.0, 10.0, Controller::Idm, DriverParams::nominal());
        let id = sim.spawn_external(2, 100.0, 10.0);
        let av = sim.get(id).unwrap();
        for v in sim.vehicles() {
            if v.id != id && v.lane == av.lane {
                assert!((v.pos - av.pos).abs() > sim.cfg().vehicle_len);
            }
        }
    }
}
