//! Vehicle state and per-driver behavioural parameters.

use crate::network::SegmentId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stable identifier of a vehicle for the lifetime of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(pub u64);

/// Which longitudinal controller drives a vehicle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Controller {
    /// Krauss model (SUMO's default car-following model).
    Krauss,
    /// Intelligent Driver Model (Treiber et al.).
    Idm,
    /// Adaptive cruise control (constant-time-gap linear feedback).
    Acc,
    /// Externally commanded: the simulation applies whatever maneuver the
    /// caller sets each step (used for the autonomous vehicle).
    External,
}

/// Behavioural parameters of one driver.
///
/// Conventional traffic gets heterogeneous parameters (sampled once per
/// vehicle) so the synthetic REAL corpus has NGSIM-like driver variety.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriverParams {
    /// Desired (free-flow) speed, m/s.
    pub desired_speed: f64,
    /// Desired time headway, s.
    pub headway: f64,
    /// Minimum standstill gap, m.
    pub min_gap: f64,
    /// Maximum self-imposed acceleration, m/s^2 (≤ the road's legal bound).
    pub accel: f64,
    /// Comfortable deceleration, m/s^2 (positive number).
    pub decel: f64,
    /// Krauss driver-imperfection (dawdling) factor in [0, 1].
    pub sigma: f64,
    /// MOBIL politeness factor in [0, 1].
    pub politeness: f64,
    /// Lane-change incentive threshold, m/s^2.
    pub lc_threshold: f64,
}

impl DriverParams {
    /// A deterministic mid-range driver (used for the AV's fallback model
    /// and in unit tests).
    pub fn nominal() -> Self {
        Self {
            desired_speed: 22.0,
            headway: 1.4,
            min_gap: 2.0,
            accel: 2.0,
            decel: 2.5,
            sigma: 0.0,
            politeness: 0.3,
            lc_threshold: 0.2,
        }
    }

    /// Samples a heterogeneous driver around the nominal profile.
    pub fn sample(rng: &mut impl Rng, v_max: f64) -> Self {
        let nominal = Self::nominal();
        Self {
            desired_speed: (nominal.desired_speed * rng.random_range(0.85..1.15)).min(v_max),
            headway: rng.random_range(1.0..2.0),
            min_gap: rng.random_range(1.5..3.0),
            accel: rng.random_range(1.5..2.5),
            decel: rng.random_range(2.0..3.0),
            sigma: rng.random_range(0.0..0.4),
            politeness: rng.random_range(0.1..0.6),
            lc_threshold: rng.random_range(0.1..0.4),
        }
    }
}

/// Full dynamic state of one vehicle.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vehicle {
    /// Stable identifier.
    pub id: VehicleId,
    /// Segment the vehicle is on (always 0 in single-segment worlds).
    pub seg: SegmentId,
    /// Lane index within the segment, 0 = leftmost.
    pub lane: usize,
    /// Longitudinal position of the *front bumper*, metres from the origin.
    pub pos: f64,
    /// Longitudinal velocity, m/s (always ≥ 0).
    pub vel: f64,
    /// Acceleration applied during the last step, m/s^2.
    pub accel: f64,
    /// Body length, m.
    pub length: f64,
    /// Longitudinal controller.
    pub controller: Controller,
    /// Behavioural parameters.
    pub driver: DriverParams,
    /// Set when this vehicle was involved in a collision.
    pub collided: bool,
    /// Steps remaining before another lane change is allowed.
    pub lc_cooldown: u32,
}

impl Vehicle {
    /// Rear-bumper position.
    #[inline]
    pub fn rear(&self) -> f64 {
        self.pos - self.length
    }

    /// Bumper-to-bumper gap from `self` (follower) to `leader`.
    ///
    /// Negative values mean the bodies overlap.
    #[inline]
    pub fn gap_to(&self, leader: &Vehicle) -> f64 {
        leader.rear() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn car(pos: f64, len: f64) -> Vehicle {
        Vehicle {
            id: VehicleId(0),
            seg: SegmentId(0),
            lane: 0,
            pos,
            vel: 10.0,
            accel: 0.0,
            length: len,
            controller: Controller::Idm,
            driver: DriverParams::nominal(),
            collided: false,
            lc_cooldown: 0,
        }
    }

    #[test]
    fn gap_geometry() {
        let follower = car(50.0, 5.0);
        let leader = car(70.0, 5.0);
        assert_eq!(follower.gap_to(&leader), 15.0);
        assert_eq!(leader.rear(), 65.0);
    }

    #[test]
    fn overlapping_gap_is_negative() {
        let follower = car(68.0, 5.0);
        let leader = car(70.0, 5.0);
        assert!(follower.gap_to(&leader) < 0.0);
    }

    #[test]
    fn sampled_drivers_respect_speed_cap() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        for _ in 0..100 {
            let d = DriverParams::sample(&mut rng, 20.0);
            assert!(d.desired_speed <= 20.0);
            assert!(d.headway >= 1.0 && d.headway <= 2.0);
            assert!(d.sigma >= 0.0 && d.sigma < 0.4);
        }
    }
}
