//! Property tests for simulator invariants: over random seeds, densities
//! and horizons, the conventional traffic must stay legal, collision-free
//! and deterministic.

use proptest::prelude::*;
use traffic_sim::{ExternalCommand, LaneChange, RoadNetwork, SimConfig, Simulation};

fn cfg(seed: u64, density: f64, lanes: usize) -> SimConfig {
    SimConfig {
        road_len: 600.0,
        lanes,
        density_per_km: density,
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conventional_traffic_never_collides(
        seed in 0u64..500,
        density in 30.0f64..200.0,
        lanes in 2usize..7,
    ) {
        let mut sim = Simulation::new(cfg(seed, density, lanes));
        sim.populate();
        for _ in 0..150 {
            let out = sim.step();
            prop_assert!(out.collisions.is_empty(), "collision at step {}", sim.step_count());
        }
    }

    #[test]
    fn kinematics_stay_bounded(seed in 0u64..500) {
        let mut sim = Simulation::new(cfg(seed, 150.0, 4));
        sim.populate();
        let a_max = sim.cfg().a_max;
        let e_decel = sim.cfg().emergency_decel;
        let v_max = sim.cfg().v_max;
        let dt = sim.cfg().dt;
        for _ in 0..100 {
            let before: std::collections::HashMap<_, _> =
                sim.vehicles().map(|v| (v.id, (v.pos, v.vel))).collect();
            sim.step();
            for v in sim.vehicles() {
                prop_assert!(v.vel >= 0.0 && v.vel <= v_max + 1e-9);
                prop_assert!(v.accel <= a_max + 1e-9 && v.accel >= -e_decel - 1e-9);
                if let Some(&(pos0, vel0)) = before.get(&v.id) {
                    // No teleporting: displacement consistent with speeds.
                    let disp = v.pos - pos0;
                    let max_disp = (vel0.max(v.vel)) * dt + 1e-9;
                    prop_assert!(disp >= -1e-9 && disp <= max_disp,
                        "vehicle moved {disp} m in one step (v0={vel0}, v1={})", v.vel);
                }
            }
        }
    }

    #[test]
    fn determinism_over_random_commands(seed in 0u64..500) {
        let run = |seed: u64| {
            let mut sim = Simulation::new(cfg(seed, 120.0, 4));
            sim.populate();
            let av = sim.spawn_external(1, 20.0, 12.0);
            let mut trace = Vec::new();
            for i in 0..80u32 {
                let lc = match i % 7 {
                    0 => LaneChange::Left,
                    3 => LaneChange::Right,
                    _ => LaneChange::Keep,
                };
                let accel = ((i % 5) as f64) - 2.0;
                sim.set_command(av, ExternalCommand { lane_change: lc, accel });
                sim.step();
                if let Some(v) = sim.get(av) {
                    trace.push((v.lane, v.pos.to_bits(), v.vel.to_bits()));
                }
            }
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn density_is_maintained(seed in 0u64..500) {
        let mut sim = Simulation::new(cfg(seed, 100.0, 4));
        sim.populate();
        let initial = sim.vehicle_count();
        for _ in 0..300 {
            sim.step();
        }
        let now = sim.vehicle_count();
        prop_assert!(now * 10 >= initial * 8, "density decayed {initial} -> {now}");
    }

    #[test]
    fn sharded_stepping_is_byte_identical(seed in 0u64..500, shards in 2usize..5) {
        let corridor = |seed: u64, shards: usize| {
            let mut sim = Simulation::new(SimConfig {
                lanes: 3,
                density_per_km: 100.0,
                seed,
                network: Some(RoadNetwork::corridor(&[250.0, 250.0, 250.0, 250.0], 3)),
                ..SimConfig::default()
            });
            sim.set_shards(shards);
            sim.populate();
            for _ in 0..120 {
                sim.step();
            }
            sim.state_checksum()
        };
        prop_assert_eq!(corridor(seed, 1), corridor(seed, shards),
            "shard count must not change the trajectory");
    }
}
