#!/bin/sh
# Local CI gate: formatting, lints (warnings are errors), full test suite,
# fault-injection smoke, and the parallel-determinism perf smoke.
# Run from anywhere; operates on the workspace root.
#
# With network access (e.g. the GitHub workflow) plain cargo resolves the
# real crates. On an air-gapped machine set CI_OFFLINE=1 to route every
# cargo call through scripts/offline_check.sh and the vendored stubs.
set -eu
cd "$(dirname "$0")/.."

if [ "${CI_OFFLINE:-0}" = "1" ]; then
    run_cargo() { sh scripts/offline_check.sh "$@"; }
else
    run_cargo() { cargo "$@"; }
fi

echo "== cargo fmt --check =="
run_cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
run_cargo clippy --workspace --all-targets -- -D warnings

echo "== headlint (workspace static analysis) =="
# Errors (determinism, panic-safety, float-safety, telemetry keys, header
# drift, and the call-graph rules: determinism-taint, serve-reachability,
# telemetry-liveness) fail the gate; the seeded fixture must keep failing
# or the engine itself has regressed. The main run exercises the
# incremental cache and the 2-thread pool, then a serial no-cache run must
# reproduce the report byte-for-byte — the engine's determinism contract.
mkdir -p results
run_cargo run -q -p lint --bin headlint -- \
    --threads 2 --cache target/lint_cache.json \
    --sarif-out results/lint_report.sarif > results/lint_stdout.txt
cat results/lint_stdout.txt
run_cargo run -q -p lint --bin headlint > results/lint_stdout_serial.txt
if ! cmp -s results/lint_stdout.txt results/lint_stdout_serial.txt; then
    echo "FAIL: 2-thread cached headlint output differs from the serial run" >&2
    diff results/lint_stdout_serial.txt results/lint_stdout.txt >&2 || true
    exit 1
fi
rm -f results/lint_stdout.txt results/lint_stdout_serial.txt
test -f results/lint_report.sarif
echo "   archived: results/lint_report.sarif"
if run_cargo run -q -p lint --bin headlint -- --root crates/lint/fixtures/ws > /dev/null; then
    echo "FAIL: headlint exited 0 on the seeded fixture workspace" >&2
    exit 1
fi

echo "== cargo test =="
run_cargo test --workspace -q

echo "== fault-injection smoke (blackout profile, kill + resume) =="
CKPT_DIR=$(mktemp -d)
DIFF_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR" "$DIFF_DIR"' EXIT
# First leg: halt after 3 of 6 episodes (simulated crash mid-run)...
run_cargo run -q -p bench --bin robustness -- \
    --scale smoke --episodes 6 --faults blackout \
    --checkpoint "$CKPT_DIR" --every 1 --halt-after 3 > /dev/null
test -f "$CKPT_DIR/checkpoint.json"
# ...second leg resumes from the checkpoint and finishes the run.
run_cargo run -q -p bench --bin robustness -- \
    --scale smoke --episodes 6 --faults blackout \
    --checkpoint "$CKPT_DIR" | grep -q "robustness run: 6 episodes"

echo "== parallel + kernel perf smoke (2 threads; all checksums must match) =="
mkdir -p results
# The perf binary itself exits 1 on a checksum mismatch, on a learn-step
# weight divergence between the fresh-graph and persistent-tape loops,
# when the steady-state tape allocates more than it reuses, and on any
# kernel gate: the auto-dispatched GEMM losing to serial at any measured
# size, forced parallel losing where the dispatcher would choose it
# (hosts with >=2 effective cores), or a batched-inference row falling
# under its gated floor (2x for the flat-state DQN trunk, "never loses"
# for the shape-bound rows). The greps re-require the explicit all-clear
# lines so a silent early exit cannot pass. Runs the release profile: the
# committed baselines under results/baseline/ were recorded from it, and
# the dev profile's debug assertions flatten the batching gains the
# floors gate on.
PERF_OUT=$(run_cargo run -q --release -p bench --bin perf -- \
    --scale smoke --threads 2 --json results/BENCH_parallel.json \
    --json-core results/BENCH_core.json \
    --json-kernels results/BENCH_kernels.json \
    --telemetry results --trends results/trends.jsonl)
echo "$PERF_OUT" | grep -q "all serial/parallel checksums equal"
echo "$PERF_OUT" | grep -q "kernel perf gates ok"
echo "$PERF_OUT" | grep -q "steady-state allocation reuse ok"
test -f results/BENCH_parallel.json
test -f results/BENCH_core.json
test -f results/BENCH_kernels.json
# Every perf smoke appends its sections to the trend database.
grep -q '"perf"' results/trends.jsonl
grep -q '"kernels\.' results/trends.jsonl
echo "   archived: results/BENCH_parallel.json results/BENCH_core.json results/BENCH_kernels.json results/trends.jsonl"

echo "== serve chaos soak (heavy faults, hot-reload + kill/restart) =="
# The soak drives >=1k framed requests through a real headd child under the
# heavy fault profile, hot-reloads weights mid-run, SIGKILLs the daemon and
# restarts it from the reloaded checkpoint. The binary itself exits 1 on
# any unanswered request, an unclean daemon exit (panic), a divergent
# post-restart byte stream, or a degradation count that does not match the
# deterministic fault schedule. The greps re-require the all-clear lines so
# a silent early exit cannot pass.
run_cargo build -q -p serve --bin headd
SERVE_OUT=$(run_cargo run -q -p bench --bin serve -- \
    --faults heavy --json results/BENCH_serve.json --trends results/trends.jsonl)
echo "$SERVE_OUT" | grep -q "all requests answered: true"
echo "$SERVE_OUT" | grep -q "restart byte-identical: true"
test -f results/BENCH_serve.json
grep -q '"serve"' results/trends.jsonl
echo "   archived: results/BENCH_serve.json"

echo "== fleet shard-determinism smoke (8 AVs; N-shard == serial) =="
# The fleet bench steps 8 concurrent HEAD agents on the four-segment ramp
# network at shard counts 1/2/4 and exits 1 if any sharded world checksum
# diverges from the serial run — the space-sharding handoff contract as a
# hard failure, same shape as the perf checksum gate. The grep re-requires
# the all-clear line so a silent early exit cannot pass. Release profile:
# the committed baseline was recorded from it.
FLEET_OUT=$(run_cargo run -q --release -p bench --bin fleet -- \
    --scale smoke --threads 2 --avs 8 \
    --json results/BENCH_fleet.json --trends results/trends.jsonl)
echo "$FLEET_OUT" | grep -q "all fleet shard checksums equal"
test -f results/BENCH_fleet.json
grep -q '"fleet"' results/trends.jsonl
echo "   archived: results/BENCH_fleet.json"

echo "== benchdiff regression gate =="
# Sanity first: identical inputs must diff clean, and a synthetic 4x
# wall-time + checksum regression must trip the gate — otherwise the gate
# itself is broken and the baseline comparison below proves nothing.
run_cargo run -q -p bench --bin benchdiff -- \
    --base results/BENCH_parallel.json --cand results/BENCH_parallel.json > /dev/null
printf '{"wall_ms": 100.0, "checksums_equal": true}\n' > "$DIFF_DIR/base.json"
printf '{"wall_ms": 400.0, "checksums_equal": false}\n' > "$DIFF_DIR/cand.json"
if run_cargo run -q -p bench --bin benchdiff -- \
    --base "$DIFF_DIR/base.json" --cand "$DIFF_DIR/cand.json" > /dev/null; then
    echo "FAIL: benchdiff exited 0 on a synthetic regression" >&2
    exit 1
fi
# The real gate: this run against the committed baseline. Exact metrics
# (checksums, reuse counts, flags) are gated tightly; wall-clock bands are
# wide (10x) because CI hardware differs from the baseline machine — the
# gate catches determinism drift and catastrophic slowdowns, the trend
# database tracks the rest.
run_cargo run -q -p bench --bin benchdiff -- \
    --base results/baseline/BENCH_parallel.json --cand results/BENCH_parallel.json \
    --time-tol 9.0 --json results/benchdiff_parallel.json
run_cargo run -q -p bench --bin benchdiff -- \
    --base results/baseline/BENCH_core.json --cand results/BENCH_core.json \
    --time-tol 9.0 --json results/benchdiff_core.json
# Kernel sweep: GFLOP/s and speedups are higher-better (benchdiff reads
# the direction from the leaf name), checksums and gate floors are exact.
run_cargo run -q -p bench --bin benchdiff -- \
    --base results/baseline/BENCH_kernels.json --cand results/BENCH_kernels.json \
    --time-tol 9.0 --json results/benchdiff_kernels.json
# The serve soak gates the same way: latency bands are wide, but the
# degradation counters, shed counts and byte-identity flags are exact.
run_cargo run -q -p bench --bin benchdiff -- \
    --base results/baseline/BENCH_serve.json --cand results/BENCH_serve.json \
    --time-tol 9.0 --json results/benchdiff_serve.json
# Fleet sweep: the throughput rates are higher-better with wide bands
# (hardware varies), but the per-shard checksum strings and the
# checksums_equal flags are exact — a cross-machine shard-determinism
# gate on top of the in-run one.
run_cargo run -q -p bench --bin benchdiff -- \
    --base results/baseline/BENCH_fleet.json --cand results/BENCH_fleet.json \
    --time-tol 9.0 --json results/benchdiff_fleet.json
echo "   archived: results/benchdiff_parallel.json results/benchdiff_core.json results/benchdiff_kernels.json results/benchdiff_serve.json results/benchdiff_fleet.json"

echo "CI OK"
