#!/bin/sh
# Local CI gate: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; operates on the workspace root.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "CI OK"
