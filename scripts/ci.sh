#!/bin/sh
# Local CI gate: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; operates on the workspace root.
set -eu
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== headlint (workspace static analysis) =="
# Errors (determinism, panic-safety, float-safety, telemetry keys, header
# drift) fail the gate; the seeded fixture must keep failing or the engine
# itself has regressed.
cargo run -q -p lint --bin headlint
if cargo run -q -p lint --bin headlint -- --root crates/lint/fixtures/ws > /dev/null; then
    echo "FAIL: headlint exited 0 on the seeded fixture workspace" >&2
    exit 1
fi

echo "== cargo test =="
cargo test --workspace -q

echo "== fault-injection smoke (blackout profile, kill + resume) =="
CKPT_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR"' EXIT
# First leg: halt after 3 of 6 episodes (simulated crash mid-run)...
cargo run -q -p bench --bin robustness -- \
    --scale smoke --episodes 6 --faults blackout \
    --checkpoint "$CKPT_DIR" --every 1 --halt-after 3 > /dev/null
test -f "$CKPT_DIR/checkpoint.json"
# ...second leg resumes from the checkpoint and finishes the run.
cargo run -q -p bench --bin robustness -- \
    --scale smoke --episodes 6 --faults blackout \
    --checkpoint "$CKPT_DIR" | grep -q "robustness run: 6 episodes"

echo "CI OK"
