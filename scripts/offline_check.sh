#!/usr/bin/env bash
# Runs cargo against the vendored offline stubs (vendor/offline-stubs) so the
# workspace can be built and tested on machines with no crates-io access.
#
# Usage: scripts/offline_check.sh [cargo args...]   (default: test --workspace)
#
# Mechanism: temporarily appends a [patch.crates-io] section pointing every
# external dependency at its stub, runs cargo fully offline, then restores the
# pristine Cargo.toml and removes the stub-resolved Cargo.lock. The patch is
# never committed; CI with network access uses the real crates.
set -eu
cd "$(dirname "$0")/.."

MANIFEST=Cargo.toml
BACKUP=Cargo.toml.offline-backup

if grep -q 'offline-stubs' "$MANIFEST"; then
    echo "offline_check: $MANIFEST already patched; restore it first" >&2
    exit 1
fi

cp "$MANIFEST" "$BACKUP"
restore() {
    mv "$BACKUP" "$MANIFEST"
    rm -f Cargo.lock
}
trap restore EXIT

cat >> "$MANIFEST" <<'EOF'

[patch.crates-io]
rand = { path = "vendor/offline-stubs/rand" }
rand_chacha = { path = "vendor/offline-stubs/rand_chacha" }
serde = { path = "vendor/offline-stubs/serde" }
serde_json = { path = "vendor/offline-stubs/serde_json" }
proptest = { path = "vendor/offline-stubs/proptest" }
criterion = { path = "vendor/offline-stubs/criterion" }
EOF

rm -f Cargo.lock
export CARGO_NET_OFFLINE=true

if [ "$#" -eq 0 ]; then
    cargo test --workspace
else
    cargo "$@"
fi
