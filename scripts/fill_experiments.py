#!/usr/bin/env python3
"""Injects the recorded results/*.txt tables into EXPERIMENTS.md."""
import pathlib

root = pathlib.Path("/root/repo")
doc = (root / "EXPERIMENTS.md").read_text()

def block(name):
    p = root / "results" / f"{name}.txt"
    if not p.exists():
        return "*(not recorded)*"
    return "```text\n" + p.read_text().strip() + "\n```"

doc = doc.replace("<!-- TABLE1 -->", block("table1"))
doc = doc.replace("<!-- TABLE2 -->", block("table2"))
doc = doc.replace("<!-- TABLE3_4 -->", block("table3_4"))
doc = doc.replace("<!-- TABLE5_6 -->", block("table5_6"))
doc = doc.replace("<!-- TABLE7 -->", block("table7"))
(root / "EXPERIMENTS.md").write_text(doc)
print("filled")
