#!/bin/sh
# Regenerates every paper table into results/, with telemetry JSONL sinks.
# Fails loudly: any table binary exiting non-zero aborts the whole run and
# propagates its exit code (results/ALL_DONE is only written on full success).
set -eu
cd /root/repo
mkdir -p results

run_table() {
    name=$1
    shift
    echo "== $name =="
    "./target/release/$name" "$@" --telemetry results \
        --trends results/trends.jsonl \
        --json "results/$name.json" > "results/$name.txt" 2>&1 || {
        status=$?
        echo "FAIL: $name exited $status (see results/$name.txt)" >&2
        exit "$status"
    }
    echo "   telemetry: results/$name.telemetry.jsonl"
}

# Capture the static-analysis report alongside the run artifacts so every
# regenerated table set records the lint state of the tree that produced it.
echo "== headlint =="
./target/release/headlint --telemetry results > results/headlint.txt

# Parallel-determinism benchmark: BENCH_parallel.json lands next to
# lint_report.json so each table set also records the pool's serial-vs-
# parallel checksums (the binary exits non-zero if they diverge).
echo "== perf (parallel determinism) =="
./target/release/perf --scale smoke --threads 2 \
    --telemetry results --trends results/trends.jsonl \
    --json results/BENCH_parallel.json > results/perf.txt 2>&1

# Fleet shard sweep: BENCH_fleet.json records vehicles/sec and
# AV-decisions/sec vs shard count; the binary exits non-zero if any
# sharded world checksum diverges from the serial run.
echo "== fleet (sharded world throughput) =="
./target/release/fleet --scale smoke --threads 2 --avs 8 \
    --telemetry results --trends results/trends.jsonl \
    --json results/BENCH_fleet.json > results/fleet.txt 2>&1

run_table table3_4
run_table table1 --episodes 1200
run_table table5_6 --episodes 800
run_table table2 --episodes 800
run_table table7 --episodes 400 --eval 16
touch results/ALL_DONE
# Archive pointers for the observability artifacts this run produced: the
# append-only trend database and any flight-recorder post-mortem dumps.
echo "   trend database: results/trends.jsonl"
if [ -d results/flight ] && [ -n "$(ls results/flight 2>/dev/null)" ]; then
    echo "   flight dumps: $(ls results/flight | wc -l) file(s) in results/flight/"
fi
echo "all tables regenerated"
