#!/bin/sh
cd /root/repo
./target/release/table3_4 --json results/table3_4.json > results/table3_4.txt 2>&1
./target/release/table1 --episodes 1200 --json results/table1.json > results/table1.txt 2>&1
./target/release/table5_6 --episodes 800 --json results/table5_6.json > results/table5_6.txt 2>&1
./target/release/table2 --episodes 800 --json results/table2.json > results/table2.txt 2>&1
./target/release/table7 --episodes 400 --eval 16 --json results/table7.json > results/table7.txt 2>&1
touch results/ALL_DONE
