//! Impact study: compares how strongly different agents disturb the
//! traffic behind them — the paper's headline motivation. Runs IDM-LC,
//! ACC-LC and TP-BTS on identical evaluation seeds and prints the
//! impact-centric metrics (Avg#-CA, AvgD-CA, AvgDT-C).
//!
//! ```sh
//! cargo run -p head --example highway_impact --release
//! ```

use decision::{AgentConfig, BpDqn};
use head::{
    aggregate, evaluate_agent, AccLc, DrivingAgent, EnvConfig, HighwayEnv, IdmLc, PerceptionMode,
    PolicyAgent, RuleConfig, TpBts, TpBtsConfig,
};

fn main() {
    let cfg = EnvConfig::bench_scale();
    let eval_episodes = 8;
    let seed_base = 5_000_000;

    let mut rows: Vec<(String, head::AggregateMetrics)> = Vec::new();

    let mut env = HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence);
    let mut idm = IdmLc::new(RuleConfig::default());
    rows.push((
        idm.name(),
        aggregate(
            cfg.sim.road_len,
            &evaluate_agent(&mut env, &mut idm, eval_episodes, seed_base),
        ),
    ));

    let mut acc = AccLc::new(RuleConfig::default());
    rows.push((
        acc.name(),
        aggregate(
            cfg.sim.road_len,
            &evaluate_agent(&mut env, &mut acc, eval_episodes, seed_base),
        ),
    ));

    let mut bts = TpBts::new(TpBtsConfig::default(), cfg.sim.lane_width);
    rows.push((
        bts.name(),
        aggregate(
            cfg.sim.road_len,
            &evaluate_agent(&mut env, &mut bts, eval_episodes, seed_base),
        ),
    ));

    // An untrained policy for contrast: random-ish maneuvers disturb the
    // platoon far more (train it properly with examples/train_head.rs).
    let mut raw = PolicyAgent::new(
        "HEAD (untrained)",
        Box::new(BpDqn::new(AgentConfig::default())),
    );
    rows.push((
        raw.name(),
        aggregate(
            cfg.sim.road_len,
            &evaluate_agent(&mut env, &mut raw, eval_episodes, seed_base),
        ),
    ));

    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "Agent", "Avg#-CA", "AvgD-CA", "AvgDT-C", "AvgV-A", "collisions"
    );
    for (name, m) in rows {
        println!(
            "{:<18} {:>8.1} {:>8.2} {:>9.1} {:>9.2} {:>7}/{}",
            name, m.avg_impact_events, m.avg_d_ca, m.avg_dt_c, m.avg_v_a, m.collisions, m.episodes
        );
    }
    println!("\nLower Avg#-CA / AvgD-CA / AvgDT-C = less disturbance to following traffic.");
}
