//! Quickstart: drive the highway environment with a rule-based baseline
//! and with a (briefly trained) HEAD agent, and print the episode metrics.
//!
//! ```sh
//! cargo run -p head --example quickstart --release
//! ```

use decision::{AgentConfig, BpDqn, LinearSchedule};
use head::{
    aggregate, evaluate_agent, run_episode, train_agent, DrivingAgent, EnvConfig, HighwayEnv,
    IdmLc, PerceptionMode, PolicyAgent, RuleConfig,
};

fn main() {
    // A short road keeps this example under a minute; swap in
    // `EnvConfig::paper_scale()` for the paper's 3 km setting.
    let cfg = EnvConfig::bench_scale();

    // --- 1. A rule-based driver needs no training. ----------------------
    let mut env = HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence);
    let mut idm = IdmLc::new(RuleConfig::default());
    env.reset();
    let metrics = run_episode(&mut env, &mut idm, false);
    println!(
        "IDM-LC: finished in {:.1} s at mean speed {:.1} m/s ({:?})",
        metrics.driving_time, metrics.avg_v, metrics.terminal
    );

    // --- 2. HEAD: train a small BP-DQN for a handful of episodes. -------
    // (A real run uses head::experiments::train_lstgat for perception and
    // hundreds of episodes; this is just the API tour.)
    let agent_cfg = AgentConfig {
        warmup: 256,
        update_every: 4,
        epsilon: LinearSchedule::new(1.0, 0.1, 2_000),
        noise: LinearSchedule::new(1.0, 0.2, 2_000),
        ..AgentConfig::default()
    };
    let mut env = HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence);
    let mut headv = PolicyAgent::new("HEAD (mini)", Box::new(BpDqn::new(agent_cfg)));
    let report = train_agent(&mut env, &mut headv, 40);
    println!(
        "{}: trained 40 episodes in {:.1} s, recent mean step reward {:+.3}",
        headv.name(),
        report.total_secs,
        report.recent_mean_reward(10)
    );

    // --- 3. Greedy evaluation on paired seeds. ---------------------------
    let eps = evaluate_agent(&mut env, &mut headv, 5, 9_000_000);
    let agg = aggregate(cfg.sim.road_len, &eps);
    println!(
        "evaluation over {} episodes: AvgDT-A {:.1} s, AvgV-A {:.1} m/s, Avg#-CA {:.1}, collisions {}",
        agg.episodes, agg.avg_dt_a, agg.avg_v_a, agg.avg_impact_events, agg.collisions
    );
}
