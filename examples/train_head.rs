//! Full HEAD training pipeline with checkpointing:
//!
//! 1. generate the synthetic REAL corpus and train LST-GAT on it;
//! 2. seed the BP-DQN replay buffer with IDM-LC demonstrations;
//! 3. train BP-DQN in the closed loop;
//! 4. save both checkpoints to `target/head_checkpoints/` and verify a
//!    reloaded agent reproduces the greedy policy.
//!
//! ```sh
//! cargo run -p head --example train_head --release -- [episodes]
//! ```

use decision::BpDqn;
use head::experiments::{train_lstgat, Scale};
use head::{
    aggregate, evaluate_agent, seed_with_demonstrations, train_agent, HighwayEnv, IdmLc,
    PerceptionMode, PolicyAgent, RuleConfig,
};
use perception::{LstGat, LstGatConfig};

fn main() {
    let episodes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mut scale = Scale::bench();
    scale.train_episodes = episodes;

    println!("[1/4] training LST-GAT on the synthetic REAL corpus ...");
    let (weights, corpus, report) = train_lstgat(&scale);
    println!(
        "      {} train / {} test samples, final epoch loss {:.5}",
        corpus.train.len(),
        corpus.test.len(),
        report.epoch_losses.last().unwrap() // lint:allow(panic) demo binary: training always runs at least one epoch
    );

    println!(
        "[2/4] seeding replay with {} IDM-LC demonstration episodes ...",
        scale.demo_episodes
    );
    let mut model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    model.load_weights_json(&weights).unwrap(); // lint:allow(panic) demo binary: weights come straight from train_lstgat
    let mut env = HighwayEnv::new(scale.env.clone(), PerceptionMode::LstGat(Box::new(model)));
    let mut agent = PolicyAgent::new("HEAD", Box::new(BpDqn::new(scale.agent)));
    let mut teacher = IdmLc::new(RuleConfig::default());
    seed_with_demonstrations(&mut env, &mut teacher, &mut agent, scale.demo_episodes);

    println!("[3/4] training BP-DQN for {episodes} episodes ...");
    let report = train_agent(&mut env, &mut agent, episodes);
    println!(
        "      {:.1} s total, recent mean step reward {:+.3}",
        report.total_secs,
        report.recent_mean_reward(25)
    );

    println!("[4/4] checkpointing and verifying reload ...");
    let dir = std::path::Path::new("target/head_checkpoints");
    std::fs::create_dir_all(dir).expect("create checkpoint dir"); // lint:allow(panic) demo binary: checkpoint I/O failure should abort loudly
    std::fs::write(dir.join("lstgat.json"), &weights).unwrap(); // lint:allow(panic) demo binary: checkpoint I/O failure should abort loudly
    std::fs::write(dir.join("bpdqn.json"), agent.learner().save_json()).unwrap(); // lint:allow(panic) demo binary: checkpoint I/O failure should abort loudly

    let mut reloaded = PolicyAgent::new("HEAD (reloaded)", Box::new(BpDqn::new(scale.agent)));
    let json = std::fs::read_to_string(dir.join("bpdqn.json")).unwrap(); // lint:allow(panic) demo binary: reads the file written two lines up
    reloaded.learner_mut().load_json(&json).unwrap(); // lint:allow(panic) demo binary: round-trips the checkpoint just saved

    let before = evaluate_agent(&mut env, &mut agent, 4, 7_500_000);
    let after = evaluate_agent(&mut env, &mut reloaded, 4, 7_500_000);
    let (a, b) = (
        aggregate(scale.env.sim.road_len, &before),
        aggregate(scale.env.sim.road_len, &after),
    );
    println!(
        "      original AvgV-A {:.2} m/s vs reloaded {:.2} m/s (must match)",
        a.avg_v_a, b.avg_v_a
    );
    assert!(
        (a.avg_v_a - b.avg_v_a).abs() < 1e-9,
        "checkpoint must reproduce the policy"
    );
    println!("done: checkpoints in {}", dir.display());
}
