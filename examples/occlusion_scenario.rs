//! Occlusion scenario: reproduces the geometry of the paper's Figures 2–4.
//!
//! A deterministic three-vehicle scene shows (1) what the range/occlusion-
//! limited sensor reports, (2) which phantom vehicles the enhanced
//! perception module constructs and where, and (3) the one-step state
//! prediction built on top.
//!
//! ```sh
//! cargo run -p head --example occlusion_scenario --release
//! ```

use perception::{
    BuilderConfig, GraphBuilder, LstGat, LstGatConfig, MissingKind, NodeSource, Normalizer,
    StatePredictor, AREAS,
};
use sensor::{sense, SensorConfig, SensorHistory};
use traffic_sim::{SimConfig, Simulation};

fn main() {
    // A quiet road: the ego, a leader dead ahead, and a third vehicle
    // hidden straight behind that leader (the paper's Fig. 4 case (2,2)).
    let cfg = SimConfig {
        road_len: 2000.0,
        lanes: 6,
        density_per_km: 0.0,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(cfg);
    let ego = sim.spawn_external(2, 500.0, 20.0);
    let leader = sim.spawn_external(2, 530.0, 18.0);
    let hidden = sim.spawn_external(2, 560.0, 16.0);
    println!(
        "scene: ego #{:?} @500 m, leader #{leader:?} @530 m, hidden #{hidden:?} @560 m\n",
        ego
    );

    // --- 1. The raw sensor view -----------------------------------------
    let sensor_cfg = SensorConfig::default();
    let mut history = SensorHistory::new(5);
    for _ in 0..5 {
        history.push(sense(&sim, ego, &sensor_cfg));
    }
    let latest = history.latest().unwrap(); // lint:allow(panic) demo binary: the loop above pushed five frames
    println!(
        "sensor reports {} vehicle(s) within {} m:",
        latest.observed.len(),
        sensor_cfg.range
    );
    for o in &latest.observed {
        println!(
            "  {:?} lane {} pos {:.1} vel {:.1}  <- the hidden car is NOT here",
            o.id, o.lane, o.pos, o.vel
        );
    }

    // --- 2. Phantom construction ----------------------------------------
    let builder = GraphBuilder::new(BuilderConfig::default());
    let graph = builder.build(&history);
    println!("\nphantom construction (6 target slots):");
    for area in AREAS {
        let slot = area.slot();
        let h = graph.frames[graph.depth() - 1][perception::target_node(slot)];
        let kind = match graph.sources[perception::target_node(slot)] {
            NodeSource::Observed(id) => format!("observed {id:?}"),
            NodeSource::Ego => "ego".into(),
            NodeSource::Phantom(MissingKind::Range) => "PHANTOM (range, at sensor horizon)".into(),
            NodeSource::Phantom(MissingKind::Inherent) => {
                "PHANTOM (inherent, road boundary)".into()
            }
            NodeSource::Phantom(MissingKind::Occlusion) => "PHANTOM (occlusion!)".into(),
            NodeSource::Phantom(MissingKind::ZeroPadded) => "zero padding".into(),
        };
        println!(
            "  {:?}: d_lat {:+6.1} m  d_lon {:+7.1} m  v_rel {:+5.1} m/s  [{kind}]",
            area, h[0], h[1], h[2]
        );
    }
    // The occluded car shows up as an occlusion phantom *around the
    // leader*, mirrored through it (paper Eq. 6):
    let occluded_node = perception::surrounding_node(1, 1);
    let h = graph.frames[graph.depth() - 1][occluded_node];
    println!(
        "\nleader's own front slot (paper C_2.2): d_lon {:+.1} m, source {:?}",
        h[1], graph.sources[occluded_node]
    );
    println!("  -> the blind spot behind the leader is filled at exactly 2x the leader offset");

    // --- 3. One-step prediction on the completed graph -------------------
    let model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
    let pred = model.predict(&graph);
    println!("\nLST-GAT one-step predictions (untrained weights, shown for API):");
    for (area, p) in AREAS.iter().zip(pred.iter()) {
        println!(
            "  {:?}: d_lat {:+.2} d_lon {:+.2} v_rel {:+.2}",
            area, p.d_lat, p.d_lon, p.v_rel
        );
    }
}
